#include "hpe/hpe_hier.h"

#include <stdexcept>

namespace apks {

std::size_t HierFormat::block_offset(std::size_t level) const {
  if (level < 1 || level > block_sizes.size() + 1) {
    throw std::invalid_argument("HierFormat: bad level");
  }
  std::size_t off = 0;
  for (std::size_t l = 1; l < level; ++l) off += block_sizes[l - 1];
  return off;
}

HpeHierarchical::HpeHierarchical(const Pairing& pairing, HierFormat format,
                                 HpeOptions opts)
    : hpe_(pairing, format.n(), opts), format_(std::move(format)) {
  if (format_.block_sizes.empty()) {
    throw std::invalid_argument("HpeHierarchical: empty format");
  }
  for (const std::size_t d : format_.block_sizes) {
    if (d == 0) throw std::invalid_argument("HpeHierarchical: empty block");
  }
}

void HpeHierarchical::check_support(const std::vector<Fq>& v, std::size_t lo,
                                    std::size_t hi) const {
  if (v.size() != n()) {
    throw std::invalid_argument("HpeHierarchical: |v| != n");
  }
  bool any = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool inside = i >= lo && i < hi;
    if (!inside && !v[i].is_zero()) {
      throw std::invalid_argument(
          "HpeHierarchical: predicate vector leaves its block");
    }
    any = any || (inside && !v[i].is_zero());
  }
  if (!any) {
    throw std::invalid_argument("HpeHierarchical: zero predicate block");
  }
}

HpeHierKey HpeHierarchical::gen_key(const HpeMasterKey& msk,
                                    const std::vector<Fq>& v,
                                    Rng& rng) const {
  check_support(v, 0, format_.block_offset(2));
  const FqField& fq = hpe_.pairing().fq();
  const Dpvs& dpvs = hpe_.dpvs();
  const std::size_t nn = n();
  const ScalarEngine engine = hpe_.options().engine;
  const bool pre = engine == ScalarEngine::kPrecomputed;
  std::shared_ptr<const PrecomputedBasis> mb;
  if (pre) mb = msk.precomp.get_or_build(dpvs, msk.bstar, hpe_.table_opts());
  auto bstar_term = [&](const Fq& c, std::size_t i) {
    return mb ? Dpvs::LcTerm{c, mb.get(), i, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &msk.bstar[i]};
  };

  // T = sum_i v_i b*_i over block 1; W = b*_{n+1} - b*_{n+2}.
  std::vector<Dpvs::LcTerm> tt;
  for (std::size_t i = 0; i < nn; ++i) {
    if (v[i].is_zero()) continue;
    tt.push_back(bstar_term(v[i], i));
  }
  const GVec t = dpvs.lincomb_terms(tt, engine);
  const std::vector<Dpvs::LcTerm> wt{bstar_term(fq.one(), nn),
                                     bstar_term(fq.neg(fq.one()), nn + 1)};
  const GVec w = dpvs.lincomb_terms(wt, engine);

  // Per-call tables for the {T, W} pair every component combines.
  std::shared_ptr<const PrecomputedBasis> tw;
  if (pre) {
    tw = PrecomputedBasis::build(dpvs, {&t, &w},
                                 hpe_.table_opts(Hpe::kPerCallWindow));
  }
  auto t_term = [&](const Fq& c) {
    return tw ? Dpvs::LcTerm{c, tw.get(), 0, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &t};
  };
  auto w_term = [&](const Fq& c) {
    return tw ? Dpvs::LcTerm{c, tw.get(), 1, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &w};
  };
  auto component = [&](const Fq& sigma, const Fq& eta, const GVec* extra,
                       std::size_t extra_row, const Fq& extra_coeff) {
    std::vector<Dpvs::LcTerm> terms{t_term(sigma), w_term(eta)};
    if (extra != nullptr) {
      terms.push_back(bstar_term(extra_coeff, extra_row));
    }
    return dpvs.lincomb_terms(terms, engine);
  };

  HpeHierKey key;
  key.level = 1;
  key.dec = component(fq.random(rng), fq.random(rng), &msk.bstar[nn + 1],
                      nn + 1, fq.one());
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr, 0,
                              fq.zero()));
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr, 0,
                              fq.zero()));
  // Delegation components only for the remaining blocks' coordinates —
  // the size saving over the general scheme.
  const Fq phi = fq.random_nonzero(rng);
  const std::size_t future_lo = format_.block_offset(2);
  key.del.reserve(nn - future_lo);
  for (std::size_t j = future_lo; j < nn; ++j) {
    key.del.push_back(component(fq.random(rng), fq.random(rng),
                                &msk.bstar[j], j, phi));
  }
  return key;
}

HpeHierKey HpeHierarchical::delegate(const HpeHierKey& parent,
                                     const std::vector<Fq>& v_next,
                                     Rng& rng) const {
  if (parent.level >= format_.levels()) {
    throw std::invalid_argument("HpeHierarchical: format exhausted");
  }
  const std::size_t next_level = parent.level + 1;
  const std::size_t block_lo = format_.block_offset(next_level);
  const std::size_t block_hi = format_.block_offset(next_level + 1);
  check_support(v_next, block_lo, block_hi);
  const std::size_t parent_lo = block_lo;  // parent.del starts here
  if (parent.del.size() != n() - parent_lo ||
      parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("HpeHierarchical: malformed parent key");
  }
  const FqField& fq = hpe_.pairing().fq();
  const Dpvs& dpvs = hpe_.dpvs();
  const ScalarEngine engine = hpe_.options().engine;
  const bool pre = engine == ScalarEngine::kPrecomputed;
  const std::size_t nran = parent.ran.size();
  const std::size_t ndel = parent.del.size();

  // Per-call tables over all the parent material the components combine.
  std::shared_ptr<const PrecomputedBasis> pb;
  if (pre) {
    std::vector<GVec> rows;
    rows.reserve(nran + ndel + 1);
    for (const GVec& rv : parent.ran) rows.push_back(rv);
    for (const GVec& dv : parent.del) rows.push_back(dv);
    rows.push_back(parent.dec);
    pb = PrecomputedBasis::build(dpvs, std::move(rows),
                                 hpe_.table_opts(Hpe::kPerCallWindow));
  }
  auto ran_term = [&](const Fq& c, std::size_t j) {
    return pb ? Dpvs::LcTerm{c, pb.get(), j, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &parent.ran[j]};
  };
  auto del_term = [&](const Fq& c, std::size_t i) {
    return pb ? Dpvs::LcTerm{c, pb.get(), nran + i, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &parent.del[i]};
  };
  auto dec_term = [&](const Fq& c) {
    return pb ? Dpvs::LcTerm{c, pb.get(), nran + ndel, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &parent.dec};
  };

  // S = sum over the next block of v_next[j] * parent.del[j - parent_lo].
  std::vector<Dpvs::LcTerm> st;
  for (std::size_t j = block_lo; j < block_hi; ++j) {
    if (v_next[j].is_zero()) continue;
    st.push_back(del_term(v_next[j], j - parent_lo));
  }
  const GVec s = dpvs.lincomb_terms(st, engine);
  std::shared_ptr<const PrecomputedBasis> sb;
  if (pre) {
    sb = PrecomputedBasis::build(dpvs, {&s},
                                 hpe_.table_opts(Hpe::kPerCallWindow));
  }
  auto s_term = [&](const Fq& c) {
    return sb ? Dpvs::LcTerm{c, sb.get(), 0, nullptr}
              : Dpvs::LcTerm{c, nullptr, 0, &s};
  };

  enum class Extra { kNone, kDec, kDel };
  auto combine = [&](const Fq& sigma, Extra extra, std::size_t extra_i,
                     const Fq& extra_coeff) {
    std::vector<Dpvs::LcTerm> terms;
    terms.reserve(nran + 2);
    for (std::size_t j = 0; j < nran; ++j) {
      terms.push_back(ran_term(fq.random(rng), j));
    }
    terms.push_back(s_term(sigma));
    if (extra == Extra::kDec) terms.push_back(dec_term(extra_coeff));
    if (extra == Extra::kDel) terms.push_back(del_term(extra_coeff, extra_i));
    return dpvs.lincomb_terms(terms, engine);
  };

  HpeHierKey child;
  child.level = next_level;
  child.dec = combine(fq.random(rng), Extra::kDec, 0, fq.one());
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(combine(fq.random(rng), Extra::kNone, 0, fq.zero()));
  }
  // Only the blocks beyond next_level keep delegation components.
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n() - block_hi);
  for (std::size_t j = block_hi; j < n(); ++j) {
    child.del.push_back(
        combine(fq.random(rng), Extra::kDel, j - parent_lo, phi_next));
  }
  return child;
}

}  // namespace apks
