#include "hpe/hpe_hier.h"

#include <stdexcept>

namespace apks {

std::size_t HierFormat::block_offset(std::size_t level) const {
  if (level < 1 || level > block_sizes.size() + 1) {
    throw std::invalid_argument("HierFormat: bad level");
  }
  std::size_t off = 0;
  for (std::size_t l = 1; l < level; ++l) off += block_sizes[l - 1];
  return off;
}

HpeHierarchical::HpeHierarchical(const Pairing& pairing, HierFormat format)
    : hpe_(pairing, format.n()), format_(std::move(format)) {
  if (format_.block_sizes.empty()) {
    throw std::invalid_argument("HpeHierarchical: empty format");
  }
  for (const std::size_t d : format_.block_sizes) {
    if (d == 0) throw std::invalid_argument("HpeHierarchical: empty block");
  }
}

void HpeHierarchical::check_support(const std::vector<Fq>& v, std::size_t lo,
                                    std::size_t hi) const {
  if (v.size() != n()) {
    throw std::invalid_argument("HpeHierarchical: |v| != n");
  }
  bool any = false;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool inside = i >= lo && i < hi;
    if (!inside && !v[i].is_zero()) {
      throw std::invalid_argument(
          "HpeHierarchical: predicate vector leaves its block");
    }
    any = any || (inside && !v[i].is_zero());
  }
  if (!any) {
    throw std::invalid_argument("HpeHierarchical: zero predicate block");
  }
}

HpeHierKey HpeHierarchical::gen_key(const HpeMasterKey& msk,
                                    const std::vector<Fq>& v,
                                    Rng& rng) const {
  check_support(v, 0, format_.block_offset(2));
  const FqField& fq = hpe_.pairing().fq();
  const Dpvs& dpvs = hpe_.dpvs();
  const std::size_t nn = n();

  // T = sum_i v_i b*_i over block 1; W = b*_{n+1} - b*_{n+2}.
  std::vector<Fq> coeffs;
  std::vector<const GVec*> vecs;
  for (std::size_t i = 0; i < nn; ++i) {
    if (v[i].is_zero()) continue;
    coeffs.push_back(v[i]);
    vecs.push_back(&msk.bstar[i]);
  }
  const GVec t = dpvs.lincomb(coeffs, vecs);
  const GVec w = dpvs.lincomb({fq.one(), fq.neg(fq.one())},
                              {&msk.bstar[nn], &msk.bstar[nn + 1]});

  auto component = [&](const Fq& sigma, const Fq& eta, const GVec* extra,
                       const Fq& extra_coeff) {
    std::vector<Fq> cs{sigma, eta};
    std::vector<const GVec*> vs{&t, &w};
    if (extra != nullptr) {
      cs.push_back(extra_coeff);
      vs.push_back(extra);
    }
    return dpvs.lincomb(cs, vs);
  };

  HpeHierKey key;
  key.level = 1;
  key.dec = component(fq.random(rng), fq.random(rng), &msk.bstar[nn + 1],
                      fq.one());
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr,
                              fq.zero()));
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr,
                              fq.zero()));
  // Delegation components only for the remaining blocks' coordinates —
  // the size saving over the general scheme.
  const Fq phi = fq.random_nonzero(rng);
  const std::size_t future_lo = format_.block_offset(2);
  key.del.reserve(nn - future_lo);
  for (std::size_t j = future_lo; j < nn; ++j) {
    key.del.push_back(component(fq.random(rng), fq.random(rng),
                                &msk.bstar[j], phi));
  }
  return key;
}

HpeHierKey HpeHierarchical::delegate(const HpeHierKey& parent,
                                     const std::vector<Fq>& v_next,
                                     Rng& rng) const {
  if (parent.level >= format_.levels()) {
    throw std::invalid_argument("HpeHierarchical: format exhausted");
  }
  const std::size_t next_level = parent.level + 1;
  const std::size_t block_lo = format_.block_offset(next_level);
  const std::size_t block_hi = format_.block_offset(next_level + 1);
  check_support(v_next, block_lo, block_hi);
  const std::size_t parent_lo = block_lo;  // parent.del starts here
  if (parent.del.size() != n() - parent_lo ||
      parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("HpeHierarchical: malformed parent key");
  }
  const FqField& fq = hpe_.pairing().fq();
  const Dpvs& dpvs = hpe_.dpvs();

  // S = sum over the next block of v_next[j] * parent.del[j - parent_lo].
  std::vector<Fq> coeffs;
  std::vector<const GVec*> vecs;
  for (std::size_t j = block_lo; j < block_hi; ++j) {
    if (v_next[j].is_zero()) continue;
    coeffs.push_back(v_next[j]);
    vecs.push_back(&parent.del[j - parent_lo]);
  }
  const GVec s = dpvs.lincomb(coeffs, vecs);

  auto combine = [&](const Fq& sigma, const GVec* extra,
                     const Fq& extra_coeff) {
    std::vector<Fq> cs;
    std::vector<const GVec*> vs;
    for (const auto& rvec : parent.ran) {
      cs.push_back(fq.random(rng));
      vs.push_back(&rvec);
    }
    cs.push_back(sigma);
    vs.push_back(&s);
    if (extra != nullptr) {
      cs.push_back(extra_coeff);
      vs.push_back(extra);
    }
    return dpvs.lincomb(cs, vs);
  };

  HpeHierKey child;
  child.level = next_level;
  child.dec = combine(fq.random(rng), &parent.dec, fq.one());
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(combine(fq.random(rng), nullptr, fq.zero()));
  }
  // Only the blocks beyond next_level keep delegation components.
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n() - block_hi);
  for (std::size_t j = block_hi; j < n(); ++j) {
    child.del.push_back(
        combine(fq.random(rng), &parent.del[j - parent_lo], phi_next));
  }
  return child;
}

}  // namespace apks
