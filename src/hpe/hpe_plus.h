// HPE+ — the query-privacy hardened HPE of the paper's Section V (Fig. 7).
//
// Setup additionally samples a secret r in F_q*. Capabilities are generated
// on the blinded dual basis r*B*, while encryptors still use the public
// Bhat. A partial ciphertext only becomes searchable after one (or a chain
// of) semi-trusted proxies rescale c1 by r^{-1}: e(r^{-1} c1, r k) cancels.
// Without r, an adversary holding only pk cannot forge ciphertexts that
// match capabilities — which is exactly what defeats the dictionary attack
// on public-key searchable encryption.
#pragma once

#include "hpe/hpe.h"

namespace apks {

struct HpePlusSetupResult {
  HpePublicKey pk;    // identical shape to plain HPE
  HpeMasterKey msk;   // bstar holds r * B*
  Fq r{};             // the TA's transformation secret
};

class HpePlus {
 public:
  HpePlus(const Pairing& pairing, std::size_t n, HpeOptions opts = {})
      : hpe_(pairing, n, opts) {}

  // Key generation, delegation and decryption are inherited unchanged: they
  // operate on the blinded basis transparently.
  [[nodiscard]] const Hpe& base() const noexcept { return hpe_; }

  [[nodiscard]] HpePlusSetupResult setup(Rng& rng) const;

  // HPE+-PartialEnc: executed by the data owner — plain HPE encryption
  // under pk. Not searchable until proxy-transformed.
  [[nodiscard]] HpeCiphertext partial_enc(const HpePublicKey& pk,
                                          const std::vector<Fq>& x,
                                          const GtEl& m, Rng& rng) const {
    return hpe_.encrypt(pk, x, m, rng);
  }

  // HPE+-ProxyEnc: rescales c1 by the proxy's inverse share. With a single
  // proxy the share is r^{-1}; with P proxies the ciphertext must pass
  // through all of them (any order), multiplying to r^{-1}.
  [[nodiscard]] HpeCiphertext proxy_transform(const Fq& inv_share,
                                              const HpeCiphertext& ct) const;

  // Splits r into `parts` multiplicative shares (r = r_1 * ... * r_P), one
  // per proxy. Returns the shares; callers invert per proxy as needed.
  [[nodiscard]] static std::vector<Fq> split_secret(const FqField& fq,
                                                    const Fq& r,
                                                    std::size_t parts,
                                                    Rng& rng);

 private:
  Hpe hpe_;
};

}  // namespace apks
