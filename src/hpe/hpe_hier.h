// The *hierarchical-format* HPE of Okamoto-Takashima 2009 — the other of
// the "two schemes of HPE in [30]" the paper mentions (it uses the
// general-delegation one; we provide both).
//
// A format mu = (d_1, ..., d_r) partitions the n coordinates into r blocks.
// A level-l key embeds predicate vectors v_1..v_l where v_j is supported on
// block j only, and delegation may only append a vector on block l+1. In
// exchange for the rigidity, keys are smaller and delegation cheaper: a
// level-l key carries delegation components only for the coordinates of
// the *remaining* blocks, and a fully-delegated key (level r) carries none.
#pragma once

#include "hpe/hpe.h"

namespace apks {

struct HierFormat {
  std::vector<std::size_t> block_sizes;  // d_1, ..., d_r; sum == n

  [[nodiscard]] std::size_t levels() const noexcept {
    return block_sizes.size();
  }
  [[nodiscard]] std::size_t n() const noexcept {
    std::size_t total = 0;
    for (const std::size_t d : block_sizes) total += d;
    return total;
  }
  // First coordinate of block `level` (1-based level).
  [[nodiscard]] std::size_t block_offset(std::size_t level) const;
};

// Key layout: `del` holds components for coordinates
// [block_offset(level+1), n) only; `level` counts embedded vectors.
struct HpeHierKey {
  std::size_t level = 0;
  GVec dec;
  std::vector<GVec> ran;
  std::vector<GVec> del;  // for the remaining blocks' coordinates
};

class HpeHierarchical {
 public:
  HpeHierarchical(const Pairing& pairing, HierFormat format,
                  HpeOptions opts = {});

  [[nodiscard]] const HierFormat& format() const noexcept { return format_; }
  [[nodiscard]] std::size_t n() const noexcept { return hpe_.n(); }
  [[nodiscard]] const Hpe& base() const noexcept { return hpe_; }

  // Setup / encryption are identical to the general scheme.
  void setup(Rng& rng, HpePublicKey& pk, HpeMasterKey& msk) const {
    hpe_.setup(rng, pk, msk);
  }
  [[nodiscard]] HpeCiphertext encrypt(const HpePublicKey& pk,
                                      const std::vector<Fq>& x, const GtEl& m,
                                      Rng& rng) const {
    return hpe_.encrypt(pk, x, m, rng);
  }

  // Level-1 key; v must be supported on block 1 (checked).
  [[nodiscard]] HpeHierKey gen_key(const HpeMasterKey& msk,
                                   const std::vector<Fq>& v, Rng& rng) const;

  // Appends v_next, which must be supported on block parent.level+1
  // (checked); fails if the format is exhausted.
  [[nodiscard]] HpeHierKey delegate(const HpeHierKey& parent,
                                    const std::vector<Fq>& v_next,
                                    Rng& rng) const;

  [[nodiscard]] GtEl decrypt(const HpeCiphertext& ct,
                             const HpeHierKey& key) const {
    return hpe_.pairing().gt_mul(
        ct.c2,
        hpe_.pairing().gt_inv(hpe_.dpvs().pair_vec(ct.c1, key.dec)));
  }

 private:
  // Checks v is zero outside [lo, hi) and nonzero somewhere inside.
  void check_support(const std::vector<Fq>& v, std::size_t lo,
                     std::size_t hi) const;

  Hpe hpe_;
  HierFormat format_;
};

}  // namespace apks
