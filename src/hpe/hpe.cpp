#include "hpe/hpe.h"

#include <stdexcept>

namespace apks {

Hpe::Hpe(const Pairing& pairing, std::size_t n)
    : e_(&pairing), n_(n), dpvs_(pairing, n + 3) {
  if (n == 0) throw std::invalid_argument("Hpe: n must be positive");
}

void Hpe::setup(Rng& rng, HpePublicKey& pk, HpeMasterKey& msk) const {
  auto bases = dpvs_.gen_dual_bases(rng);
  pk.n = n_;
  pk.bhat.clear();
  pk.bhat.reserve(n_ + 2);
  for (std::size_t i = 0; i < n_; ++i) pk.bhat.push_back(bases.b[i]);
  // d_{n+1} = b_{n+1} + b_{n+2}.
  pk.bhat.push_back(dpvs_.add(bases.b[n_], bases.b[n_ + 1]));
  pk.bhat.push_back(bases.b[n_ + 2]);
  msk.x = std::move(bases.x);
  msk.bstar = std::move(bases.bstar);
}

GVec Hpe::key_component(const Fq& sigma, const GVec& t, const Fq& eta,
                        const GVec& w) const {
  return dpvs_.lincomb({sigma, eta}, {&t, &w});
}

HpeKey Hpe::gen_key(const HpeMasterKey& msk, const std::vector<Fq>& v,
                    Rng& rng) const {
  if (v.size() != n_) throw std::invalid_argument("Hpe::gen_key: |v| != n");
  if (msk.bstar.size() != dim()) {
    throw std::invalid_argument("Hpe::gen_key: malformed master key");
  }
  const FqField& fq = e_->fq();

  // T = sum_i v_i b*_i — shared by every component.
  std::vector<const GVec*> brows;
  brows.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) brows.push_back(&msk.bstar[i]);
  const GVec t = dpvs_.lincomb(v, brows);

  // W = b*_{n+1} - b*_{n+2}: the decryption-slot pair with coefficient sum 0.
  const GVec w = dpvs_.lincomb({fq.one(), fq.neg(fq.one())},
                               {&msk.bstar[n_], &msk.bstar[n_ + 1]});

  HpeKey key;
  key.level = 1;
  // k_dec = sigma_dec T + eta_dec W + b*_{n+2}: slot sum (n+1)+(n+2) is 1,
  // which is what pairs against the zeta d_{n+1} ciphertext slot.
  key.dec = dpvs_.add(key_component(fq.random(rng), t, fq.random(rng), w),
                      msk.bstar[n_ + 1]);
  // Two randomizers (slot sum 0: decrypt to gT^0 on a predicate match).
  key.ran.push_back(key_component(fq.random(rng), t, fq.random(rng), w));
  key.ran.push_back(key_component(fq.random(rng), t, fq.random(rng), w));
  // Delegation components share one phi so a child's appended vector is
  // scaled consistently across coordinates.
  const Fq phi = fq.random_nonzero(rng);
  key.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    key.del.push_back(dpvs_.lincomb(
        {fq.random(rng), phi, fq.random(rng)},
        {&t, &msk.bstar[j], &w}));
  }
  return key;
}

HpeKey Hpe::gen_key_naive(const HpeMasterKey& msk, const std::vector<Fq>& v,
                          Rng& rng) const {
  if (v.size() != n_) {
    throw std::invalid_argument("Hpe::gen_key_naive: |v| != n");
  }
  if (msk.bstar.size() != dim()) {
    throw std::invalid_argument("Hpe::gen_key_naive: malformed master key");
  }
  const FqField& fq = e_->fq();

  // Per-component combination sigma * (sum_i v_i b*_i) + eta * W [+ extra],
  // recomputed from the sparse v every time (no shared T). Zero entries of
  // v are skipped, so "don't care" dimensions shrink every component's MSM.
  const GVec w = dpvs_.lincomb({fq.one(), fq.neg(fq.one())},
                               {&msk.bstar[n_], &msk.bstar[n_ + 1]});
  auto component = [&](const Fq& sigma, const Fq& eta, const GVec* extra,
                       const Fq& extra_coeff) {
    std::vector<Fq> coeffs;
    std::vector<const GVec*> vecs;
    coeffs.reserve(n_ + 2);
    vecs.reserve(n_ + 2);
    for (std::size_t i = 0; i < n_; ++i) {
      if (v[i].is_zero()) continue;
      coeffs.push_back(fq.mul(sigma, v[i]));
      vecs.push_back(&msk.bstar[i]);
    }
    coeffs.push_back(eta);
    vecs.push_back(&w);
    if (extra != nullptr) {
      coeffs.push_back(extra_coeff);
      vecs.push_back(extra);
    }
    return dpvs_.lincomb(coeffs, vecs);
  };

  HpeKey key;
  key.level = 1;
  key.dec = component(fq.random(rng), fq.random(rng), &msk.bstar[n_ + 1],
                      fq.one());
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr,
                              fq.zero()));
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr,
                              fq.zero()));
  const Fq phi = fq.random_nonzero(rng);
  key.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    key.del.push_back(component(fq.random(rng), fq.random(rng),
                                &msk.bstar[j], phi));
  }
  return key;
}

HpeKey Hpe::delegate_naive(const HpeKey& parent, const std::vector<Fq>& v_next,
                           Rng& rng) const {
  if (v_next.size() != n_) {
    throw std::invalid_argument("Hpe::delegate_naive: |v| != n");
  }
  if (parent.del.size() != n_ || parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("Hpe::delegate_naive: malformed parent key");
  }
  const FqField& fq = e_->fq();
  const std::size_t nran = parent.ran.size();

  // sum_j alpha_j ran_j + sigma * (sum_i v_i k*_del,i) [+ extra], with the
  // appended-vector sum recomputed per component from the sparse v_next.
  auto component = [&](const Fq& sigma, const GVec* extra,
                       const Fq& extra_coeff) {
    std::vector<Fq> coeffs;
    std::vector<const GVec*> vecs;
    coeffs.reserve(nran + n_ + 1);
    vecs.reserve(nran + n_ + 1);
    for (std::size_t j = 0; j < nran; ++j) {
      coeffs.push_back(fq.random(rng));
      vecs.push_back(&parent.ran[j]);
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if (v_next[i].is_zero()) continue;
      coeffs.push_back(fq.mul(sigma, v_next[i]));
      vecs.push_back(&parent.del[i]);
    }
    if (extra != nullptr) {
      coeffs.push_back(extra_coeff);
      vecs.push_back(extra);
    }
    return dpvs_.lincomb(coeffs, vecs);
  };

  HpeKey child;
  child.level = parent.level + 1;
  child.dec = component(fq.random(rng), &parent.dec, fq.one());
  child.ran.reserve(child.level + 1);
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(component(fq.random(rng), nullptr, fq.zero()));
  }
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    child.del.push_back(component(fq.random(rng), &parent.del[j], phi_next));
  }
  return child;
}

HpeCiphertext Hpe::encrypt(const HpePublicKey& pk, const std::vector<Fq>& x,
                           const GtEl& m, Rng& rng) const {
  if (x.size() != n_) throw std::invalid_argument("Hpe::encrypt: |x| != n");
  if (pk.n != n_ || pk.bhat.size() != n_ + 2) {
    throw std::invalid_argument("Hpe::encrypt: malformed public key");
  }
  const FqField& fq = e_->fq();
  const Fq delta1 = fq.random(rng);
  const Fq delta2 = fq.random(rng);
  const Fq zeta = fq.random(rng);

  std::vector<Fq> coeffs;
  std::vector<const GVec*> vecs;
  coeffs.reserve(n_ + 2);
  vecs.reserve(n_ + 2);
  for (std::size_t i = 0; i < n_; ++i) {
    coeffs.push_back(fq.mul(delta1, x[i]));
    vecs.push_back(&pk.bhat[i]);
  }
  coeffs.push_back(zeta);
  vecs.push_back(&pk.bhat[n_]);  // d_{n+1}
  coeffs.push_back(delta2);
  vecs.push_back(&pk.bhat[n_ + 1]);  // b_{n+3}

  HpeCiphertext ct;
  ct.c1 = dpvs_.lincomb(coeffs, vecs);
  ct.c2 = e_->gt_mul(e_->gt_pow(e_->gt_generator(), zeta), m);
  return ct;
}

GtEl Hpe::decrypt(const HpeCiphertext& ct, const HpeKey& key) const {
  return e_->gt_mul(ct.c2, e_->gt_inv(dpvs_.pair_vec(ct.c1, key.dec)));
}

std::vector<PreprocessedPairing> Hpe::preprocess_key(const HpeKey& key) const {
  return dpvs_.preprocess_vec(key.dec);
}

GtEl Hpe::decrypt_pre(const HpeCiphertext& ct,
                      const std::vector<PreprocessedPairing>& pre) const {
  return e_->gt_mul(ct.c2, e_->gt_inv(dpvs_.pair_vec_pre(pre, ct.c1)));
}

HpeKey Hpe::delegate(const HpeKey& parent, const std::vector<Fq>& v_next,
                     Rng& rng) const {
  if (v_next.size() != n_) {
    throw std::invalid_argument("Hpe::delegate: |v| != n");
  }
  if (parent.del.size() != n_ || parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("Hpe::delegate: malformed parent key");
  }
  const FqField& fq = e_->fq();
  const std::size_t nran = parent.ran.size();

  // S = sum_i v_{next,i} k*_del,i — the appended predicate, shared below.
  std::vector<const GVec*> drows;
  drows.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) drows.push_back(&parent.del[i]);
  const GVec s = dpvs_.lincomb(v_next, drows);

  // Helper assembling  sum_j alpha_j ran_j + sigma S (+ extras).
  auto combine = [&](const Fq& sigma, const GVec* extra,
                     const Fq& extra_coeff) {
    std::vector<Fq> coeffs;
    std::vector<const GVec*> vecs;
    coeffs.reserve(nran + 2);
    vecs.reserve(nran + 2);
    for (std::size_t j = 0; j < nran; ++j) {
      coeffs.push_back(fq.random(rng));
      vecs.push_back(&parent.ran[j]);
    }
    coeffs.push_back(sigma);
    vecs.push_back(&s);
    if (extra != nullptr) {
      coeffs.push_back(extra_coeff);
      vecs.push_back(extra);
    }
    return dpvs_.lincomb(coeffs, vecs);
  };

  HpeKey child;
  child.level = parent.level + 1;
  // k'_dec = k_dec + sum alpha_j ran_j + sigma_dec S.
  child.dec =
      dpvs_.add(parent.dec, combine(fq.random(rng), nullptr, fq.zero()));
  // level+2 fresh randomizers.
  child.ran.reserve(child.level + 1);
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(combine(fq.random(rng), nullptr, fq.zero()));
  }
  // Delegation components keep a shared phi' on the parent's del_j.
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    child.del.push_back(
        combine(fq.random(rng), &parent.del[j], phi_next));
  }
  return child;
}

}  // namespace apks
