#include "hpe/hpe.h"

#include <optional>
#include <stdexcept>

namespace apks {

using LcTerm = Dpvs::LcTerm;

Hpe::Hpe(const Pairing& pairing, std::size_t n, HpeOptions opts)
    : e_(&pairing), n_(n), dpvs_(pairing, n + 3), opts_(opts) {
  if (n == 0) throw std::invalid_argument("Hpe: n must be positive");
}

void Hpe::setup(Rng& rng, HpePublicKey& pk, HpeMasterKey& msk) const {
  auto bases = dpvs_.gen_dual_bases(rng);
  pk.n = n_;
  pk.bhat.clear();
  pk.bhat.reserve(n_ + 2);
  for (std::size_t i = 0; i < n_; ++i) pk.bhat.push_back(bases.b[i]);
  // d_{n+1} = b_{n+1} + b_{n+2}.
  pk.bhat.push_back(dpvs_.add(bases.b[n_], bases.b[n_ + 1]));
  pk.bhat.push_back(bases.b[n_ + 2]);
  pk.precomp.reset();
  msk.x = std::move(bases.x);
  msk.bstar = std::move(bases.bstar);
  msk.precomp.reset();
}

void Hpe::warm_precomp(const HpePublicKey& pk) const {
  if (opts_.engine != ScalarEngine::kPrecomputed) return;
  (void)pk.precomp.get_or_build(dpvs_, pk.bhat, table_opts());
}

void Hpe::warm_precomp(const HpeMasterKey& msk) const {
  if (opts_.engine != ScalarEngine::kPrecomputed) return;
  (void)msk.precomp.get_or_build(dpvs_, msk.bstar, table_opts());
}

HpeKey Hpe::gen_key(const HpeMasterKey& msk, const std::vector<Fq>& v,
                    Rng& rng) const {
  if (v.size() != n_) throw std::invalid_argument("Hpe::gen_key: |v| != n");
  if (msk.bstar.size() != dim()) {
    throw std::invalid_argument("Hpe::gen_key: malformed master key");
  }
  const FqField& fq = e_->fq();
  const bool pre = opts_.engine == ScalarEngine::kPrecomputed;
  std::shared_ptr<const PrecomputedBasis> mb;
  if (pre) mb = msk.precomp.get_or_build(dpvs_, msk.bstar, table_opts());
  auto bstar_term = [&](const Fq& c, std::size_t i) {
    return mb ? LcTerm{c, mb.get(), i, nullptr}
              : LcTerm{c, nullptr, 0, &msk.bstar[i]};
  };

  // T = sum_i v_i b*_i — shared by every component.
  std::vector<LcTerm> tt;
  tt.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) tt.push_back(bstar_term(v[i], i));
  const GVec t = dpvs_.lincomb_terms(tt, opts_.engine);

  // W = b*_{n+1} - b*_{n+2}: the decryption-slot pair with coefficient sum 0.
  const std::vector<LcTerm> wt{bstar_term(fq.one(), n_),
                               bstar_term(fq.neg(fq.one()), n_ + 1)};
  const GVec w = dpvs_.lincomb_terms(wt, opts_.engine);

  // Every component below combines {T, W} (+ a basis row); give the pair
  // its own per-call tables so the n+4 component lincombs share them.
  std::shared_ptr<const PrecomputedBasis> tw;
  if (pre) {
    tw = PrecomputedBasis::build(dpvs_, {&t, &w}, table_opts(kPerCallWindow));
  }
  auto t_term = [&](const Fq& c) {
    return tw ? LcTerm{c, tw.get(), 0, nullptr} : LcTerm{c, nullptr, 0, &t};
  };
  auto w_term = [&](const Fq& c) {
    return tw ? LcTerm{c, tw.get(), 1, nullptr} : LcTerm{c, nullptr, 0, &w};
  };
  // sigma * T + eta * W, the common shape of all key components.
  auto component = [&](const Fq& sigma, const Fq& eta) {
    const std::vector<LcTerm> terms{t_term(sigma), w_term(eta)};
    return dpvs_.lincomb_terms(terms, opts_.engine);
  };

  HpeKey key;
  key.level = 1;
  // k_dec = sigma_dec T + eta_dec W + b*_{n+2}: slot sum (n+1)+(n+2) is 1,
  // which is what pairs against the zeta d_{n+1} ciphertext slot.
  key.dec = dpvs_.add(component(fq.random(rng), fq.random(rng)),
                      msk.bstar[n_ + 1]);
  // Two randomizers (slot sum 0: decrypt to gT^0 on a predicate match).
  key.ran.push_back(component(fq.random(rng), fq.random(rng)));
  key.ran.push_back(component(fq.random(rng), fq.random(rng)));
  // Delegation components share one phi so a child's appended vector is
  // scaled consistently across coordinates.
  const Fq phi = fq.random_nonzero(rng);
  key.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    const std::vector<LcTerm> terms{t_term(fq.random(rng)),
                                    bstar_term(phi, j),
                                    w_term(fq.random(rng))};
    key.del.push_back(dpvs_.lincomb_terms(terms, opts_.engine));
  }
  return key;
}

HpeKey Hpe::gen_key_naive(const HpeMasterKey& msk, const std::vector<Fq>& v,
                          Rng& rng) const {
  if (v.size() != n_) {
    throw std::invalid_argument("Hpe::gen_key_naive: |v| != n");
  }
  if (msk.bstar.size() != dim()) {
    throw std::invalid_argument("Hpe::gen_key_naive: malformed master key");
  }
  const FqField& fq = e_->fq();
  const bool pre = opts_.engine == ScalarEngine::kPrecomputed;
  std::shared_ptr<const PrecomputedBasis> mb;
  if (pre) mb = msk.precomp.get_or_build(dpvs_, msk.bstar, table_opts());
  auto bstar_term = [&](const Fq& c, std::size_t i) {
    return mb ? LcTerm{c, mb.get(), i, nullptr}
              : LcTerm{c, nullptr, 0, &msk.bstar[i]};
  };

  // Per-component combination sigma * (sum_i v_i b*_i) + eta * W [+ extra],
  // recomputed from the sparse v every time (no shared T). Zero entries of
  // v are skipped, so "don't care" dimensions shrink every component's MSM.
  const std::vector<LcTerm> wt{bstar_term(fq.one(), n_),
                               bstar_term(fq.neg(fq.one()), n_ + 1)};
  const GVec w = dpvs_.lincomb_terms(wt, opts_.engine);
  std::shared_ptr<const PrecomputedBasis> wb;
  if (pre) {
    wb = PrecomputedBasis::build(dpvs_, {&w}, table_opts(kPerCallWindow));
  }
  auto w_term = [&](const Fq& c) {
    return wb ? LcTerm{c, wb.get(), 0, nullptr} : LcTerm{c, nullptr, 0, &w};
  };
  auto component = [&](const Fq& sigma, const Fq& eta, const GVec* extra,
                       std::size_t extra_row, const Fq& extra_coeff) {
    std::vector<LcTerm> terms;
    terms.reserve(n_ + 2);
    for (std::size_t i = 0; i < n_; ++i) {
      if (v[i].is_zero()) continue;
      terms.push_back(bstar_term(fq.mul(sigma, v[i]), i));
    }
    terms.push_back(w_term(eta));
    if (extra != nullptr) {
      // All extras are rows of B*, addressable through the master cache.
      terms.push_back(bstar_term(extra_coeff, extra_row));
    }
    return dpvs_.lincomb_terms(terms, opts_.engine);
  };

  HpeKey key;
  key.level = 1;
  key.dec = component(fq.random(rng), fq.random(rng), &msk.bstar[n_ + 1],
                      n_ + 1, fq.one());
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr, 0,
                              fq.zero()));
  key.ran.push_back(component(fq.random(rng), fq.random(rng), nullptr, 0,
                              fq.zero()));
  const Fq phi = fq.random_nonzero(rng);
  key.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    key.del.push_back(component(fq.random(rng), fq.random(rng),
                                &msk.bstar[j], j, phi));
  }
  return key;
}

HpeKey Hpe::delegate_naive(const HpeKey& parent, const std::vector<Fq>& v_next,
                           Rng& rng) const {
  if (v_next.size() != n_) {
    throw std::invalid_argument("Hpe::delegate_naive: |v| != n");
  }
  if (parent.del.size() != n_ || parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("Hpe::delegate_naive: malformed parent key");
  }
  const FqField& fq = e_->fq();
  const std::size_t nran = parent.ran.size();
  const bool pre = opts_.engine == ScalarEngine::kPrecomputed;

  // Every component combines the same parent material (ran, del, dec);
  // build one per-call table set over all of it.
  std::shared_ptr<const PrecomputedBasis> pb;
  if (pre) {
    std::vector<GVec> rows;
    rows.reserve(nran + n_ + 1);
    for (const GVec& rv : parent.ran) rows.push_back(rv);
    for (const GVec& dv : parent.del) rows.push_back(dv);
    rows.push_back(parent.dec);
    pb = PrecomputedBasis::build(dpvs_, std::move(rows),
                                 table_opts(kPerCallWindow));
  }
  auto ran_term = [&](const Fq& c, std::size_t j) {
    return pb ? LcTerm{c, pb.get(), j, nullptr}
              : LcTerm{c, nullptr, 0, &parent.ran[j]};
  };
  auto del_term = [&](const Fq& c, std::size_t i) {
    return pb ? LcTerm{c, pb.get(), nran + i, nullptr}
              : LcTerm{c, nullptr, 0, &parent.del[i]};
  };
  auto dec_term = [&](const Fq& c) {
    return pb ? LcTerm{c, pb.get(), nran + n_, nullptr}
              : LcTerm{c, nullptr, 0, &parent.dec};
  };

  // sum_j alpha_j ran_j + sigma * (sum_i v_i k*_del,i) [+ extra], with the
  // appended-vector sum recomputed per component from the sparse v_next.
  enum class Extra { kNone, kDec, kDel };
  auto component = [&](const Fq& sigma, Extra extra, std::size_t extra_i,
                       const Fq& extra_coeff) {
    std::vector<LcTerm> terms;
    terms.reserve(nran + n_ + 1);
    for (std::size_t j = 0; j < nran; ++j) {
      terms.push_back(ran_term(fq.random(rng), j));
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if (v_next[i].is_zero()) continue;
      terms.push_back(del_term(fq.mul(sigma, v_next[i]), i));
    }
    if (extra == Extra::kDec) terms.push_back(dec_term(extra_coeff));
    if (extra == Extra::kDel) terms.push_back(del_term(extra_coeff, extra_i));
    return dpvs_.lincomb_terms(terms, opts_.engine);
  };

  HpeKey child;
  child.level = parent.level + 1;
  child.dec = component(fq.random(rng), Extra::kDec, 0, fq.one());
  child.ran.reserve(child.level + 1);
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(component(fq.random(rng), Extra::kNone, 0, fq.zero()));
  }
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    child.del.push_back(component(fq.random(rng), Extra::kDel, j, phi_next));
  }
  return child;
}

HpeCiphertext Hpe::encrypt(const HpePublicKey& pk, const std::vector<Fq>& x,
                           const GtEl& m, Rng& rng) const {
  if (x.size() != n_) throw std::invalid_argument("Hpe::encrypt: |x| != n");
  if (pk.n != n_ || pk.bhat.size() != n_ + 2) {
    throw std::invalid_argument("Hpe::encrypt: malformed public key");
  }
  const FqField& fq = e_->fq();
  const Fq delta1 = fq.random(rng);
  const Fq delta2 = fq.random(rng);
  const Fq zeta = fq.random(rng);

  std::shared_ptr<const PrecomputedBasis> basis;
  if (opts_.engine == ScalarEngine::kPrecomputed) {
    basis = pk.precomp.get_or_build(dpvs_, pk.bhat, table_opts());
  }
  auto bhat_term = [&](const Fq& c, std::size_t i) {
    return basis ? LcTerm{c, basis.get(), i, nullptr}
                 : LcTerm{c, nullptr, 0, &pk.bhat[i]};
  };
  std::vector<LcTerm> terms;
  terms.reserve(n_ + 2);
  for (std::size_t i = 0; i < n_; ++i) {
    terms.push_back(bhat_term(fq.mul(delta1, x[i]), i));
  }
  terms.push_back(bhat_term(zeta, n_));        // d_{n+1}
  terms.push_back(bhat_term(delta2, n_ + 1));  // b_{n+3}

  HpeCiphertext ct;
  ct.c1 = dpvs_.lincomb_terms(terms, opts_.engine);
  ct.c2 = e_->gt_mul(e_->gt_pow(e_->gt_generator(), zeta), m);
  return ct;
}

GtEl Hpe::decrypt(const HpeCiphertext& ct, const HpeKey& key) const {
  return e_->gt_mul(ct.c2, e_->gt_inv(dpvs_.pair_vec(ct.c1, key.dec)));
}

std::vector<PreprocessedPairing> Hpe::preprocess_key(const HpeKey& key) const {
  return dpvs_.preprocess_vec(key.dec);
}

GtEl Hpe::decrypt_pre(const HpeCiphertext& ct,
                      std::span<const PreprocessedPairing> pre) const {
  return e_->gt_mul(ct.c2, e_->gt_inv(dpvs_.pair_vec_pre(pre, ct.c1)));
}

void Hpe::decrypt_pre_block(const BlockMultiPairing& kernel,
                            const HpeCiphertext* const* cts, std::size_t n,
                            GtEl* out) const {
  if (kernel.dim() != dim()) {
    throw std::invalid_argument("Hpe::decrypt_pre_block: kernel dimension");
  }
  std::vector<const AffinePoint*> qvecs(n);
  for (std::size_t r = 0; r < n; ++r) {
    if (cts[r]->c1.size() != kernel.dim()) {
      throw std::invalid_argument("Hpe::decrypt_pre_block: ciphertext dim");
    }
    qvecs[r] = cts[r]->c1.data();
  }
  kernel.run(qvecs.data(), n, out);
  for (std::size_t r = 0; r < n; ++r) {
    out[r] = e_->gt_mul(cts[r]->c2, e_->gt_inv(out[r]));
  }
}

HpeKey Hpe::delegate(const HpeKey& parent, const std::vector<Fq>& v_next,
                     Rng& rng) const {
  if (v_next.size() != n_) {
    throw std::invalid_argument("Hpe::delegate: |v| != n");
  }
  if (parent.del.size() != n_ || parent.ran.size() != parent.level + 1) {
    throw std::invalid_argument("Hpe::delegate: malformed parent key");
  }
  const FqField& fq = e_->fq();
  const std::size_t nran = parent.ran.size();
  const bool pre = opts_.engine == ScalarEngine::kPrecomputed;

  std::shared_ptr<const PrecomputedBasis> pb;
  if (pre) {
    std::vector<GVec> rows;
    rows.reserve(nran + n_);
    for (const GVec& rv : parent.ran) rows.push_back(rv);
    for (const GVec& dv : parent.del) rows.push_back(dv);
    pb = PrecomputedBasis::build(dpvs_, std::move(rows),
                                 table_opts(kPerCallWindow));
  }
  auto ran_term = [&](const Fq& c, std::size_t j) {
    return pb ? LcTerm{c, pb.get(), j, nullptr}
              : LcTerm{c, nullptr, 0, &parent.ran[j]};
  };
  auto del_term = [&](const Fq& c, std::size_t i) {
    return pb ? LcTerm{c, pb.get(), nran + i, nullptr}
              : LcTerm{c, nullptr, 0, &parent.del[i]};
  };

  // S = sum_i v_{next,i} k*_del,i — the appended predicate, shared below.
  std::vector<LcTerm> st;
  st.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) st.push_back(del_term(v_next[i], i));
  const GVec s = dpvs_.lincomb_terms(st, opts_.engine);
  std::shared_ptr<const PrecomputedBasis> sb;
  if (pre) {
    sb = PrecomputedBasis::build(dpvs_, {&s}, table_opts(kPerCallWindow));
  }
  auto s_term = [&](const Fq& c) {
    return sb ? LcTerm{c, sb.get(), 0, nullptr} : LcTerm{c, nullptr, 0, &s};
  };

  // Helper assembling  sum_j alpha_j ran_j + sigma S (+ extras).
  auto combine = [&](const Fq& sigma, std::optional<std::size_t> extra_del,
                     const Fq& extra_coeff) {
    std::vector<LcTerm> terms;
    terms.reserve(nran + 2);
    for (std::size_t j = 0; j < nran; ++j) {
      terms.push_back(ran_term(fq.random(rng), j));
    }
    terms.push_back(s_term(sigma));
    if (extra_del) terms.push_back(del_term(extra_coeff, *extra_del));
    return dpvs_.lincomb_terms(terms, opts_.engine);
  };

  HpeKey child;
  child.level = parent.level + 1;
  // k'_dec = k_dec + sum alpha_j ran_j + sigma_dec S.
  child.dec =
      dpvs_.add(parent.dec, combine(fq.random(rng), std::nullopt, fq.zero()));
  // level+2 fresh randomizers.
  child.ran.reserve(child.level + 1);
  for (std::size_t j = 0; j < child.level + 1; ++j) {
    child.ran.push_back(combine(fq.random(rng), std::nullopt, fq.zero()));
  }
  // Delegation components keep a shared phi' on the parent's del_j.
  const Fq phi_next = fq.random_nonzero(rng);
  child.del.reserve(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    child.del.push_back(combine(fq.random(rng), j, phi_next));
  }
  return child;
}

}  // namespace apks
