#include "hpe/serialize.h"

#include <stdexcept>

namespace apks {

void write_fq(const FqField& fq, const Fq& v, ByteWriter& w) {
  std::array<std::uint8_t, 24> buf{};
  fq.to_int(v).to_bytes(buf);
  // The top 4 bytes of the 3-limb representation are always zero for a
  // 160-bit modulus; ship the 20 significant bytes, as the paper assumes.
  w.raw(std::span<const std::uint8_t>(buf.data() + 4, 20));
}

Fq read_fq(const FqField& fq, ByteReader& r) {
  const auto bytes = r.raw(20);
  const FqInt v = FqInt::from_bytes(bytes);
  if (v >= fq.modulus()) {
    throw std::invalid_argument("read_fq: scalar out of range");
  }
  return fq.from_int(v);
}

void write_point(const Curve& curve, const AffinePoint& pt, ByteWriter& w) {
  std::array<std::uint8_t, Curve::kCompressedSize> buf{};
  curve.serialize(pt, buf);
  w.raw(buf);
}

AffinePoint read_point(const Curve& curve, ByteReader& r) {
  const auto bytes = r.raw(Curve::kCompressedSize);
  std::array<std::uint8_t, Curve::kCompressedSize> buf{};
  std::copy(bytes.begin(), bytes.end(), buf.begin());
  if (buf[0] == 0) {
    // Curve::deserialize only inspects the tag for infinity; insist on the
    // canonical all-zero encoding here so every group element has exactly
    // one accepted byte representation (corrupt tags must not silently
    // alias the identity).
    for (std::size_t i = 1; i < buf.size(); ++i) {
      if (buf[i] != 0) {
        throw std::invalid_argument("read_point: non-canonical infinity");
      }
    }
  }
  return curve.deserialize(buf);
}

void write_gt(const Pairing& e, const GtEl& v, ByteWriter& w) {
  std::array<std::uint8_t, Pairing::kGtCompressedSize> buf{};
  e.gt_serialize(v, buf);
  w.raw(buf);
}

GtEl read_gt(const Pairing& e, ByteReader& r) {
  const auto bytes = r.raw(Pairing::kGtCompressedSize);
  std::array<std::uint8_t, Pairing::kGtCompressedSize> buf{};
  std::copy(bytes.begin(), bytes.end(), buf.begin());
  return e.gt_deserialize(buf);
}

void write_gvec(const Curve& curve, const GVec& v, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& pt : v) write_point(curve, pt, w);
}

GVec read_gvec(const Curve& curve, ByteReader& r) {
  const std::uint32_t n = r.u32();
  // Validate the claimed count against the bytes actually present before
  // reserving (hostile length prefixes must not drive allocations).
  if (n > r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("read_gvec: length field exceeds payload");
  }
  GVec v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(read_point(curve, r));
  return v;
}

std::vector<std::uint8_t> serialize_ciphertext(const Pairing& e,
                                               const HpeCiphertext& ct) {
  ByteWriter w;
  write_gvec(e.curve(), ct.c1, w);
  write_gt(e, ct.c2, w);
  return w.take();
}

HpeCiphertext deserialize_ciphertext(const Pairing& e,
                                     std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HpeCiphertext ct;
  ct.c1 = read_gvec(e.curve(), r);
  ct.c2 = read_gt(e, r);
  if (!r.done()) throw std::invalid_argument("ciphertext: trailing bytes");
  return ct;
}

std::vector<std::uint8_t> serialize_key(const Pairing& e, const HpeKey& key) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(key.level));
  write_gvec(e.curve(), key.dec, w);
  w.u32(static_cast<std::uint32_t>(key.ran.size()));
  for (const auto& v : key.ran) write_gvec(e.curve(), v, w);
  w.u32(static_cast<std::uint32_t>(key.del.size()));
  for (const auto& v : key.del) write_gvec(e.curve(), v, w);
  return w.take();
}

HpeKey deserialize_key(const Pairing& e, std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HpeKey key;
  key.level = r.u32();
  // Every honest key carries level+1 randomizer vectors, each at least one
  // point: a level field the payload cannot possibly back is corrupt (and
  // would otherwise only surface as an out-of-range index much later, at
  // delegation time).
  if (key.level >= r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("key: level field exceeds payload");
  }
  key.dec = read_gvec(e.curve(), r);
  const std::uint32_t nran = r.u32();
  if (nran > r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("key: randomizer count exceeds payload");
  }
  for (std::uint32_t i = 0; i < nran; ++i) {
    key.ran.push_back(read_gvec(e.curve(), r));
  }
  if (key.ran.size() != key.level + 1) {
    // Invariant of every issued key (gen_key and delegate both maintain
    // it); enforcing it here turns a delayed delegation failure into a
    // clean parse error.
    throw std::invalid_argument("key: randomizer count != level + 1");
  }
  const std::uint32_t ndel = r.u32();
  if (ndel > r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("key: delegation count exceeds payload");
  }
  for (std::uint32_t i = 0; i < ndel; ++i) {
    key.del.push_back(read_gvec(e.curve(), r));
  }
  if (!r.done()) throw std::invalid_argument("key: trailing bytes");
  return key;
}

std::vector<std::uint8_t> serialize_public_key(const Pairing& e,
                                               const HpePublicKey& pk) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(pk.n));
  w.u32(static_cast<std::uint32_t>(pk.bhat.size()));
  for (const auto& v : pk.bhat) write_gvec(e.curve(), v, w);
  return w.take();
}

HpePublicKey deserialize_public_key(const Pairing& e,
                                    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HpePublicKey pk;
  pk.n = r.u32();
  const std::uint32_t rows = r.u32();
  if (rows > r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("public key: row count exceeds payload");
  }
  for (std::uint32_t i = 0; i < rows; ++i) {
    pk.bhat.push_back(read_gvec(e.curve(), r));
  }
  if (!r.done()) throw std::invalid_argument("public key: trailing bytes");
  return pk;
}

std::vector<std::uint8_t> serialize_master_key(const Pairing& e,
                                               const HpeMasterKey& msk) {
  ByteWriter w;
  const FqField& fq = e.fq();
  w.u32(static_cast<std::uint32_t>(msk.x.rows()));
  for (std::size_t i = 0; i < msk.x.rows(); ++i) {
    for (std::size_t j = 0; j < msk.x.cols(); ++j) {
      write_fq(fq, msk.x.at(i, j), w);
    }
  }
  w.u32(static_cast<std::uint32_t>(msk.bstar.size()));
  for (const auto& v : msk.bstar) write_gvec(e.curve(), v, w);
  return w.take();
}

HpeMasterKey deserialize_master_key(const Pairing& e,
                                    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  HpeMasterKey msk;
  const std::uint32_t n = r.u32();
  if (n > 4096 || static_cast<std::uint64_t>(n) * n * 20 > r.remaining()) {
    throw std::invalid_argument("master key: matrix size exceeds payload");
  }
  msk.x = MatrixFq(n, n, e.fq());
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      msk.x.at(i, j) = read_fq(e.fq(), r);
    }
  }
  const std::uint32_t rows = r.u32();
  if (rows > r.remaining() / Curve::kCompressedSize) {
    throw std::invalid_argument("master key: row count exceeds payload");
  }
  for (std::uint32_t i = 0; i < rows; ++i) {
    msk.bstar.push_back(read_gvec(e.curve(), r));
  }
  if (!r.done()) throw std::invalid_argument("master key: trailing bytes");
  return msk;
}

}  // namespace apks
