#include "hpe/hpe_plus.h"

#include <stdexcept>

namespace apks {

HpePlusSetupResult HpePlus::setup(Rng& rng) const {
  const FqField& fq = hpe_.pairing().fq();
  HpePlusSetupResult out;
  hpe_.setup(rng, out.pk, out.msk);
  out.r = fq.random_nonzero(rng);
  // Blind the dual basis: B~* = r B*. Keys generated from msk now live in
  // r * span(B*) and only match proxy-transformed ciphertexts.
  for (auto& row : out.msk.bstar) {
    row = hpe_.dpvs().scale(out.r, row);
  }
  return out;
}

HpeCiphertext HpePlus::proxy_transform(const Fq& inv_share,
                                       const HpeCiphertext& ct) const {
  HpeCiphertext out;
  out.c1 = hpe_.dpvs().scale(inv_share, ct.c1);
  out.c2 = ct.c2;  // the GT component is not blinded
  return out;
}

std::vector<Fq> HpePlus::split_secret(const FqField& fq, const Fq& r,
                                      std::size_t parts, Rng& rng) {
  if (parts == 0) throw std::invalid_argument("split_secret: parts == 0");
  std::vector<Fq> shares;
  shares.reserve(parts);
  Fq prod = fq.one();
  for (std::size_t i = 0; i + 1 < parts; ++i) {
    shares.push_back(fq.random_nonzero(rng));
    prod = fq.mul(prod, shares.back());
  }
  shares.push_back(fq.mul(r, fq.inv(prod)));
  return shares;
}

}  // namespace apks
