#include "ec/fixed_base.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "math/fp_lanes.h"

namespace apks {

namespace {

// Lane-parallel build of the multiple chains {1P, 2P, ..., half*P} for one
// chunk of points. Every chain advances by the same step — the mixed
// addition (m-1)P + P — so W chains run in SoA lanes through a single
// instruction stream. The formulas replicate Curve::jac_add_mixed op for op
// (canonical residues at every step), so the Jacobian representatives, and
// hence the batch-normalized affine entries, are bit-identical to the
// scalar build.
//
// Returns false when a lane hits an exceptional case — an infinity input,
// or H == 0 (a == ±b, only reachable for low-order points) — detected as
// Z3 = Z*H == 0; the caller rebuilds the chunk with the scalar path.
bool build_chunk_lanes(const FpLaneEngine& eng, const Curve& curve,
                       const AffinePoint* pts, std::size_t n,
                       std::size_t half, JacPoint* out) {
  for (std::size_t l = 0; l < n; ++l) {
    if (pts[l].inf) return false;
  }
  std::array<LaneFp, 8> buf{};
  FpLaneVec px, py, x, y, z;
  for (std::size_t l = 0; l < n; ++l) buf[l] = pts[l].x;
  eng.load(px, buf.data(), n);
  for (std::size_t l = 0; l < n; ++l) buf[l] = pts[l].y;
  eng.load(py, buf.data(), n);
  for (std::size_t l = 0; l < n; ++l) {
    out[l * half] = curve.to_jac(pts[l]);
  }
  x = px;
  y = py;
  for (std::size_t l = 0; l < n; ++l) buf[l] = curve.fp().one();
  eng.load(z, buf.data(), n);
  FpLaneVec z2, u, s, h, r, h2, h3, xh2, x3, y3, z3, t;
  for (std::size_t m = 2; m <= half; ++m) {
    eng.mul(z2, z, z);    // Z^2
    eng.mul(u, px, z2);   // x_b * Z^2
    eng.mul(s, z2, z);    // Z^3
    eng.mul(s, py, s);    // y_b * Z^3
    eng.sub(h, u, x);     // H = U - X
    eng.sub(r, s, y);     // R = S - Y
    eng.mul(h2, h, h);
    eng.mul(h3, h2, h);
    eng.mul(xh2, x, h2);
    eng.mul(x3, r, r);
    eng.sub(x3, x3, h3);
    eng.add(t, xh2, xh2);
    eng.sub(x3, x3, t);   // X3 = R^2 - H^3 - 2*X*H^2
    eng.sub(t, xh2, x3);
    eng.mul(t, r, t);     // R * (X*H^2 - X3)
    eng.mul(y3, y, h3);
    eng.sub(y3, t, y3);   // Y3 = R*(X*H^2 - X3) - Y*H^3
    eng.mul(z3, z, h);    // Z3 = Z * H
    eng.store(buf.data(), z3, n);
    for (std::size_t l = 0; l < n; ++l) {
      // Z nonzero inductively, so Z3 == 0 <=> H == 0: doubling/cancel case.
      if (buf[l].is_zero()) return false;
      out[l * half + (m - 1)].Z = buf[l];
    }
    eng.store(buf.data(), x3, n);
    for (std::size_t l = 0; l < n; ++l) out[l * half + (m - 1)].X = buf[l];
    eng.store(buf.data(), y3, n);
    for (std::size_t l = 0; l < n; ++l) out[l * half + (m - 1)].Y = buf[l];
    x = x3;
    y = y3;
    z = z3;
  }
  return true;
}

}  // namespace

WindowTables::WindowTables(const Curve& curve,
                           std::span<const AffinePoint> pts, unsigned wbits,
                           bool precomputed)
    : wbits_(wbits),
      half_(std::size_t{1} << (wbits - 1)),
      precomputed_(precomputed) {
  if (wbits < kMinWindow || wbits > kMaxWindow) {
    throw std::invalid_argument("WindowTables: window width out of range");
  }
  // Row i holds {P_i, 2P_i, ..., half * P_i}: one mixed addition per entry
  // (even multiples reuse the running sum), one batch inversion overall.
  std::vector<JacPoint> jac(pts.size() * half_);
  const auto scalar_chain = [&](std::size_t i) {
    const AffinePoint& p = pts[i];
    JacPoint acc = curve.to_jac(p);
    jac[i * half_] = acc;
    for (std::size_t m = 2; m <= half_; ++m) {
      acc = curve.jac_add_mixed(acc, p);
      jac[i * half_ + (m - 1)] = acc;
    }
  };
  bool built = false;
  if (pts.size() >= 2 && simd_level() != SimdLevel::kScalar) {
    // Lane-parallel build: chains for W points advance side by side. Output
    // is bit-identical to the scalar chains (see build_chunk_lanes), so the
    // choice of engine never changes a table entry.
    const auto eng = make_fp_lane_engine(curve.fp());
    if (eng->level() != SimdLevel::kScalar) {
      const std::size_t w = eng->width();
      for (std::size_t i0 = 0; i0 < pts.size(); i0 += w) {
        const std::size_t cn = std::min(w, pts.size() - i0);
        if (!build_chunk_lanes(*eng, curve, pts.data() + i0, cn, half_,
                               jac.data() + i0 * half_)) {
          for (std::size_t l = 0; l < cn; ++l) scalar_chain(i0 + l);
        }
      }
      built = true;
    }
  }
  if (!built) {
    for (std::size_t i = 0; i < pts.size(); ++i) scalar_chain(i);
  }
  entries_ = curve.batch_normalize(jac);
}

JacPoint windowed_chain(const Curve& curve,
                        std::span<const ChainTerm> terms) {
  std::ptrdiff_t start = -1;
  for (const ChainTerm& t : terms) {
    if (t.k->top_pos > start) start = t.k->top_pos;
  }
  JacPoint acc = curve.to_jac(AffinePoint::infinity());
  for (std::ptrdiff_t pos = start; pos >= 0; --pos) {
    if (!acc.is_infinity()) acc = curve.jac_dbl(acc);
    for (const ChainTerm& t : terms) {
      const auto w = static_cast<std::ptrdiff_t>(t.k->wbits);
      if (pos % w != 0) continue;
      const std::size_t j = static_cast<std::size_t>(pos / w);
      if (j >= t.k->digits.size()) continue;
      const std::int32_t d = t.k->digits[j];
      if (d == 0) continue;
      const auto m = static_cast<std::uint32_t>(d > 0 ? d : -d);
      const AffinePoint& e = t.tables->entry(t.index, m);
      acc = curve.jac_add_mixed(acc, d > 0 ? e : curve.neg(e));
    }
  }
  return acc;
}

}  // namespace apks
