#include "ec/fixed_base.h"

#include <stdexcept>

namespace apks {

WindowTables::WindowTables(const Curve& curve,
                           std::span<const AffinePoint> pts, unsigned wbits,
                           bool precomputed)
    : wbits_(wbits),
      half_(std::size_t{1} << (wbits - 1)),
      precomputed_(precomputed) {
  if (wbits < kMinWindow || wbits > kMaxWindow) {
    throw std::invalid_argument("WindowTables: window width out of range");
  }
  // Row i holds {P_i, 2P_i, ..., half * P_i}: one mixed addition per entry
  // (even multiples reuse the running sum), one batch inversion overall.
  std::vector<JacPoint> jac;
  jac.reserve(pts.size() * half_);
  for (const AffinePoint& p : pts) {
    JacPoint acc = curve.to_jac(p);
    jac.push_back(acc);
    for (std::size_t m = 2; m <= half_; ++m) {
      acc = curve.jac_add_mixed(acc, p);
      jac.push_back(acc);
    }
  }
  entries_ = curve.batch_normalize(jac);
}

JacPoint windowed_chain(const Curve& curve,
                        std::span<const ChainTerm> terms) {
  std::ptrdiff_t start = -1;
  for (const ChainTerm& t : terms) {
    if (t.k->top_pos > start) start = t.k->top_pos;
  }
  JacPoint acc = curve.to_jac(AffinePoint::infinity());
  for (std::ptrdiff_t pos = start; pos >= 0; --pos) {
    if (!acc.is_infinity()) acc = curve.jac_dbl(acc);
    for (const ChainTerm& t : terms) {
      const auto w = static_cast<std::ptrdiff_t>(t.k->wbits);
      if (pos % w != 0) continue;
      const std::size_t j = static_cast<std::size_t>(pos / w);
      if (j >= t.k->digits.size()) continue;
      const std::int32_t d = t.k->digits[j];
      if (d == 0) continue;
      const auto m = static_cast<std::uint32_t>(d > 0 ? d : -d);
      const AffinePoint& e = t.tables->entry(t.index, m);
      acc = curve.jac_add_mixed(acc, d > 0 ? e : curve.neg(e));
    }
  }
  return acc;
}

}  // namespace apks
