// PBC "type A" pairing parameters.
//
// The curve is the supersingular E : y^2 = x^3 + x over F_p with
// p = 3 (mod 4), #E(F_p) = p + 1 = h * q for a prime q. G1 = G2 = E(F_p)[q]
// and the Tate pairing maps into the order-q subgroup of F_p^2*. The paper's
// implementation uses exactly this family with |q| = 160 bits and
// |p| = 512 bits (80-bit security).
#pragma once

#include "math/fp2.h"
#include "math/fq.h"

namespace apks {

struct TypeAParams {
  FpInt p;   // base field prime, = 3 (mod 4)
  FqInt q;   // prime group order, q | p + 1
  FpInt h;   // cofactor, p + 1 = h * q
  FpInt gx;  // generator of E(F_p)[q], affine x (plain integer, < p)
  FpInt gy;  // generator y
};

// Generates fresh type-A parameters with |q| = qbits. Deterministic for a
// deterministic rng. Used by tools/gen_params; library users normally take
// default_type_a_params().
[[nodiscard]] TypeAParams generate_type_a(Rng& rng, std::size_t qbits = 160);

// The embedded default parameter set (generated once with
// tools/gen_params --seed "apks-type-a-default", then verified by tests:
// primality of p and q, p+1 == h*q, generator order).
[[nodiscard]] const TypeAParams& default_type_a_params();

// Validates structural properties (primality, cofactor identity, p mod 4,
// generator on curve with order q). Throws std::invalid_argument on failure.
void validate_params(const TypeAParams& params, Rng& rng);

}  // namespace apks
