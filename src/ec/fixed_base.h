// Windowed scalar-multiplication engine: signed fixed-window tables plus a
// shared-doubling-chain (Straus) evaluator.
//
// A scalar is recoded into signed base-2^w digits d_j in [-2^{w-1}, 2^{w-1}];
// for each point P a table of {1P, 2P, ..., 2^{w-1} P} in affine coordinates
// serves both signs (negation is free on the curve). A multi-term linear
// combination sum_i k_i P_i then runs ONE Jacobian doubling chain over the
// bit positions, adding table entries as each term's window boundary passes —
// the classic Straus trick, generalized to terms with heterogeneous window
// widths so that cached wide tables (fixed bases) and cheap narrow tables
// (ephemeral bases) mix freely in one chain.
//
// Tables are built in Jacobian coordinates and normalized with a single
// shared inversion (Curve::batch_normalize). Callers own all cost
// accounting: windowed_chain itself never touches the Curve op counters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ec/curve.h"

namespace apks {

// Signed base-2^w digits of k, least significant first:
//   k == sum_j out[j] * 2^{j*wbits},  out[j] in [-2^{w-1}, 2^{w-1}].
// The digit count covers the full limb width plus one carry digit, so any
// k (including k >= q) recodes exactly.
template <std::size_t L>
[[nodiscard]] std::vector<std::int32_t> signed_window_digits(
    const BigInt<L>& k, unsigned wbits) {
  const std::size_t total_bits = 64 * L;
  const std::size_t nd = total_bits / wbits + 2;  // +1 round-up, +1 carry
  std::vector<std::int32_t> out(nd, 0);
  const std::uint32_t base = 1u << wbits;
  const std::uint32_t half = base >> 1;
  std::uint32_t carry = 0;
  for (std::size_t j = 0; j < nd; ++j) {
    const std::size_t pos = j * wbits;
    std::uint32_t val = carry;
    if (pos < total_bits) {
      const std::size_t limb = pos / 64;
      const std::size_t off = pos % 64;
      std::uint64_t chunk = k.w[limb] >> off;
      if (off + wbits > 64 && limb + 1 < L) {
        chunk |= k.w[limb + 1] << (64 - off);
      }
      val += static_cast<std::uint32_t>(chunk & (base - 1));
    }
    // val <= (base-1) + 1; fold the top half into a borrow from the next
    // digit so every digit fits the signed table range.
    if (val >= half) {
      out[j] = static_cast<std::int32_t>(val) - static_cast<std::int32_t>(base);
      carry = 1;
    } else {
      out[j] = static_cast<std::int32_t>(val);
      carry = 0;
    }
    // val == base leaves digit 0 with carry 1 (the chunk's own carry).
  }
  return out;
}

// A scalar recoded for a specific window width. Recode once per (scalar,
// width) pair and reuse across every coordinate chain of a lincomb.
struct RecodedScalar {
  unsigned wbits = 0;
  std::vector<std::int32_t> digits;
  // Bit position of the most significant nonzero digit; -1 when k == 0.
  std::ptrdiff_t top_pos = -1;

  template <std::size_t L>
  [[nodiscard]] static RecodedScalar recode(const BigInt<L>& k,
                                            unsigned wbits) {
    RecodedScalar r;
    r.wbits = wbits;
    r.digits = signed_window_digits(k, wbits);
    for (std::size_t j = r.digits.size(); j-- > 0;) {
      if (r.digits[j] != 0) {
        r.top_pos = static_cast<std::ptrdiff_t>(j * wbits);
        break;
      }
    }
    return r;
  }
};

// Affine multiples {1P, 2P, ..., 2^{w-1} P} for each point of a basis,
// built with one shared batch normalization.
class WindowTables {
 public:
  static constexpr unsigned kMinWindow = 2;
  static constexpr unsigned kMaxWindow = 8;

  // `precomputed` marks tables cached across calls (fixed bases); callers
  // use it to attribute work to the precomp_base_mul counter.
  WindowTables(const Curve& curve, std::span<const AffinePoint> pts,
               unsigned wbits, bool precomputed);

  [[nodiscard]] unsigned wbits() const noexcept { return wbits_; }
  [[nodiscard]] std::size_t points() const noexcept {
    return half_ == 0 ? 0 : entries_.size() / half_;
  }
  [[nodiscard]] bool precomputed() const noexcept { return precomputed_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return entries_.size() * sizeof(AffinePoint);
  }
  // Table footprint of `npts` points at width `wbits`, in bytes.
  [[nodiscard]] static std::size_t table_bytes(std::size_t npts,
                                               unsigned wbits) noexcept {
    return npts * (std::size_t{1} << (wbits - 1)) * sizeof(AffinePoint);
  }

  // m * P_i for m in [1, 2^{w-1}].
  [[nodiscard]] const AffinePoint& entry(std::size_t i,
                                         std::uint32_t m) const noexcept {
    return entries_[i * half_ + (m - 1)];
  }

 private:
  unsigned wbits_ = 0;
  std::size_t half_ = 0;  // entries per point == 2^{w-1}
  bool precomputed_ = false;
  std::vector<AffinePoint> entries_;
};

// One term of a shared-chain evaluation: digits of k against the table row
// of point `index`. Terms in a chain may use different window widths.
struct ChainTerm {
  const WindowTables* tables = nullptr;
  std::size_t index = 0;
  const RecodedScalar* k = nullptr;
};

// sum_i k_i * P_i over one shared doubling chain, in Jacobian coordinates
// (no normalization — callers batch-normalize whole lincombs). Does not
// touch the op counters.
[[nodiscard]] JacPoint windowed_chain(const Curve& curve,
                                      std::span<const ChainTerm> terms);

}  // namespace apks
