// Arithmetic on the type-A curve E : y^2 = x^3 + x over F_p.
//
// Affine points carry Montgomery-form coordinates; Jacobian points are used
// internally for inversion-free scalar multiplication. Scalars are plain
// (non-Montgomery) integers below q.
#pragma once

#include <atomic>
#include <mutex>
#include <optional>
#include <string_view>
#include <vector>

#include "ec/params.h"

namespace apks {

struct AffinePoint {
  Fp x{};
  Fp y{};
  bool inf = true;

  [[nodiscard]] static AffinePoint infinity() { return {}; }
  friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

struct JacPoint {
  Fp X{};
  Fp Y{};
  Fp Z{};  // Z == 0 encodes the point at infinity

  [[nodiscard]] bool is_infinity() const noexcept { return Z.is_zero(); }
};

// Operation counters for cost-model verification: the paper states its
// complexity results in "exponentiations" (scalar multiplications) and
// pairings; counting them exactly checks those formulas independent of
// timing noise (see bench/cost_model_check and tests/cost_model_test).
struct OpCounts {
  std::uint64_t scalar_mul = 0;  // variable-base scalar multiplications
  std::uint64_t base_mul = 0;    // fixed-base (generator) multiplications
  // Of the scalar_mul above, how many were served from cached per-point
  // window tables (PrecomputedBasis). Always <= scalar_mul: the paper-facing
  // exponentiation count is engine-independent; this tracks how much of it
  // the fixed-base tables absorbed.
  std::uint64_t precomp_base_mul = 0;
  std::uint64_t cofactor_mul = 0;  // cofactor clearings (hash/sample to G)
  std::uint64_t miller = 0;      // Miller loops (pairings before final exp)
  std::uint64_t final_exp = 0;
};

class Curve {
 public:
  explicit Curve(const TypeAParams& params);

  [[nodiscard]] const TypeAParams& params() const noexcept { return params_; }
  [[nodiscard]] const FpField& fp() const noexcept { return fp_; }
  [[nodiscard]] const FqField& fq() const noexcept { return fq_; }
  [[nodiscard]] const AffinePoint& generator() const noexcept { return gen_; }

  [[nodiscard]] bool on_curve(const AffinePoint& pt) const;

  [[nodiscard]] AffinePoint neg(const AffinePoint& pt) const;
  [[nodiscard]] AffinePoint add(const AffinePoint& a,
                                const AffinePoint& b) const;
  [[nodiscard]] AffinePoint dbl(const AffinePoint& a) const;

  // Scalar multiplication k * pt; k is a plain integer (any value; reduced
  // semantics follow group order).
  [[nodiscard]] AffinePoint mul(const AffinePoint& pt, const FqInt& k) const;
  // Scalar given as a Montgomery-form F_q element.
  [[nodiscard]] AffinePoint mul_fq(const AffinePoint& pt, const Fq& k) const;
  // Jacobian result (no normalization) — callers producing many points
  // combine this with batch_normalize to share one inversion.
  [[nodiscard]] JacPoint mul_jac(const AffinePoint& pt, const FqInt& k) const;

  // Multi-scalar multiplication sum_i k_i * pts_i (scalars are
  // Montgomery-form F_q elements). Runs the windowed shared-chain engine
  // (src/ec/fixed_base.h) with ephemeral per-call tables.
  [[nodiscard]] AffinePoint msm(const std::vector<AffinePoint>& pts,
                                const std::vector<Fq>& ks) const;
  // Reference interleaved double-and-add MSM (the pre-engine
  // implementation); same group result and the same op-count accounting.
  [[nodiscard]] AffinePoint msm_naive(const std::vector<AffinePoint>& pts,
                                      const std::vector<Fq>& ks) const;

  // Jacobian internals (exposed for the pairing's Miller loop).
  [[nodiscard]] JacPoint to_jac(const AffinePoint& pt) const;
  [[nodiscard]] AffinePoint to_affine(const JacPoint& pt) const;
  [[nodiscard]] JacPoint jac_dbl(const JacPoint& pt) const;
  [[nodiscard]] JacPoint jac_add_mixed(const JacPoint& a,
                                       const AffinePoint& b) const;
  [[nodiscard]] JacPoint jac_add(const JacPoint& a, const JacPoint& b) const;

  // Converts many Jacobian points with a single field inversion
  // (Montgomery's trick) — used to normalize precomputation tables.
  [[nodiscard]] std::vector<AffinePoint> batch_normalize(
      const std::vector<JacPoint>& pts) const;

  // Fixed-base multiplication k * generator via an 8-bit comb table built
  // lazily on first use (~30x faster than the generic ladder; dominates
  // Setup and basis generation, which exponentiate the generator n0^2
  // times).
  [[nodiscard]] AffinePoint mul_base(const FqInt& k) const;
  [[nodiscard]] AffinePoint mul_base_fq(const Fq& k) const {
    return mul_base(fq_.to_int(k));
  }
  // Jacobian result (no affine conversion) — callers producing many points
  // combine this with batch_normalize to share one inversion.
  [[nodiscard]] JacPoint mul_base_jac(const FqInt& k) const;

  // Exponentiation counters (relaxed atomics; negligible overhead).
  void reset_op_counts() const noexcept {
    scalar_mul_count_.store(0, std::memory_order_relaxed);
    base_mul_count_.store(0, std::memory_order_relaxed);
    precomp_base_mul_count_.store(0, std::memory_order_relaxed);
    cofactor_mul_count_.store(0, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t scalar_mul_count() const noexcept {
    return scalar_mul_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t base_mul_count() const noexcept {
    return base_mul_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t precomp_base_mul_count() const noexcept {
    return precomp_base_mul_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cofactor_mul_count() const noexcept {
    return cofactor_mul_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] OpCounts op_counts() const noexcept {
    return {scalar_mul_count(), base_mul_count(), precomp_base_mul_count(),
            cofactor_mul_count(), 0, 0};
  }
  // Accounting hooks for the engine layers (Dpvs::lincomb_terms attributes
  // each lincomb term here; the engine itself never counts).
  void note_scalar_muls(std::uint64_t k) const noexcept {
    scalar_mul_count_.fetch_add(k, std::memory_order_relaxed);
  }
  void note_precomp_base_muls(std::uint64_t k) const noexcept {
    precomp_base_mul_count_.fetch_add(k, std::memory_order_relaxed);
  }

  // Uniformly random point of order q (random x with cofactor clearing).
  [[nodiscard]] AffinePoint random_point(Rng& rng) const;

  // Deterministic hash onto the order-q subgroup (try-and-increment +
  // cofactor clearing). Never returns infinity.
  [[nodiscard]] AffinePoint hash_to_point(std::string_view msg) const;

  // 65-byte compressed encoding: tag byte (0 infinity, 2 even-y, 3 odd-y)
  // followed by the 64-byte big-endian x coordinate.
  static constexpr std::size_t kCompressedSize = 65;
  void serialize(const AffinePoint& pt,
                 std::span<std::uint8_t, kCompressedSize> out) const;
  [[nodiscard]] AffinePoint deserialize(
      std::span<const std::uint8_t, kCompressedSize> in) const;

 private:
  [[nodiscard]] Fp rhs(const Fp& x) const;  // x^3 + x
  // h * pt via a signed fixed-window ladder over the wide cofactor; counted
  // by cofactor_mul_count_ (separate from the paper's exponentiation unit).
  [[nodiscard]] AffinePoint clear_cofactor(const AffinePoint& pt) const;
  void build_base_table() const;

  TypeAParams params_;
  FpField fp_;
  FqField fq_;
  AffinePoint gen_;

  // Lazily built generator comb: base_table_[w][b-1] = (b * 2^{8w}) * g for
  // b in 1..255, w in 0..19 (160-bit scalars).
  static constexpr std::size_t kCombWindows = 20;
  mutable std::once_flag base_table_once_;
  mutable std::vector<std::vector<AffinePoint>> base_table_;

  mutable std::atomic<std::uint64_t> scalar_mul_count_{0};
  mutable std::atomic<std::uint64_t> base_mul_count_{0};
  mutable std::atomic<std::uint64_t> precomp_base_mul_count_{0};
  mutable std::atomic<std::uint64_t> cofactor_mul_count_{0};
};

}  // namespace apks
