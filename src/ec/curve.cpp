#include "ec/curve.h"

#include <stdexcept>

#include "common/sha256.h"
#include "ec/fixed_base.h"

namespace apks {

Curve::Curve(const TypeAParams& params)
    : params_(params), fp_(params.p), fq_(params.q) {
  gen_.x = fp_.from_int(params.gx);
  gen_.y = fp_.from_int(params.gy);
  gen_.inf = false;
  if (!on_curve(gen_)) {
    throw std::invalid_argument("Curve: generator not on curve");
  }
}

Fp Curve::rhs(const Fp& x) const {
  // x^3 + x (curve coefficient a = 1, b = 0).
  return fp_.add(fp_.mul(fp_.sqr(x), x), x);
}

bool Curve::on_curve(const AffinePoint& pt) const {
  if (pt.inf) return true;
  return fp_.sqr(pt.y) == rhs(pt.x);
}

AffinePoint Curve::neg(const AffinePoint& pt) const {
  if (pt.inf) return pt;
  return {pt.x, fp_.neg(pt.y), false};
}

JacPoint Curve::to_jac(const AffinePoint& pt) const {
  if (pt.inf) return {fp_.one(), fp_.one(), fp_.zero()};
  return {pt.x, pt.y, fp_.one()};
}

AffinePoint Curve::to_affine(const JacPoint& pt) const {
  if (pt.is_infinity()) return AffinePoint::infinity();
  const Fp zinv = fp_.inv(pt.Z);
  const Fp zinv2 = fp_.sqr(zinv);
  return {fp_.mul(pt.X, zinv2), fp_.mul(pt.Y, fp_.mul(zinv2, zinv)), false};
}

JacPoint Curve::jac_dbl(const JacPoint& pt) const {
  if (pt.is_infinity() || pt.Y.is_zero()) {
    return {fp_.one(), fp_.one(), fp_.zero()};
  }
  const Fp Y2 = fp_.sqr(pt.Y);
  const Fp S = fp_.dbl(fp_.dbl(fp_.mul(pt.X, Y2)));          // 4XY^2
  const Fp Z2 = fp_.sqr(pt.Z);
  const Fp M = fp_.add(fp_.add(fp_.dbl(fp_.sqr(pt.X)), fp_.sqr(pt.X)),
                       fp_.sqr(Z2));                          // 3X^2 + Z^4
  const Fp X3 = fp_.sub(fp_.sqr(M), fp_.dbl(S));
  const Fp Y4_8 = fp_.dbl(fp_.dbl(fp_.dbl(fp_.sqr(Y2))));    // 8Y^4
  const Fp Y3 = fp_.sub(fp_.mul(M, fp_.sub(S, X3)), Y4_8);
  const Fp Z3 = fp_.dbl(fp_.mul(pt.Y, pt.Z));
  return {X3, Y3, Z3};
}

JacPoint Curve::jac_add_mixed(const JacPoint& a, const AffinePoint& b) const {
  if (b.inf) return a;
  if (a.is_infinity()) return {b.x, b.y, fp_.one()};
  const Fp Z2 = fp_.sqr(a.Z);
  const Fp U = fp_.mul(b.x, Z2);                 // x_b * Z^2
  const Fp S = fp_.mul(b.y, fp_.mul(Z2, a.Z));   // y_b * Z^3
  const Fp H = fp_.sub(U, a.X);
  const Fp R = fp_.sub(S, a.Y);
  if (H.is_zero()) {
    if (R.is_zero()) return jac_dbl(a);            // a == b
    return {fp_.one(), fp_.one(), fp_.zero()};     // a == -b
  }
  const Fp H2 = fp_.sqr(H);
  const Fp H3 = fp_.mul(H2, H);
  const Fp XH2 = fp_.mul(a.X, H2);
  const Fp X3 = fp_.sub(fp_.sub(fp_.sqr(R), H3), fp_.dbl(XH2));
  const Fp Y3 = fp_.sub(fp_.mul(R, fp_.sub(XH2, X3)), fp_.mul(a.Y, H3));
  const Fp Z3 = fp_.mul(a.Z, H);
  return {X3, Y3, Z3};
}

JacPoint Curve::jac_add(const JacPoint& a, const JacPoint& b) const {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const Fp Z1Z1 = fp_.sqr(a.Z);
  const Fp Z2Z2 = fp_.sqr(b.Z);
  const Fp U1 = fp_.mul(a.X, Z2Z2);
  const Fp U2 = fp_.mul(b.X, Z1Z1);
  const Fp S1 = fp_.mul(a.Y, fp_.mul(Z2Z2, b.Z));
  const Fp S2 = fp_.mul(b.Y, fp_.mul(Z1Z1, a.Z));
  const Fp H = fp_.sub(U2, U1);
  const Fp R = fp_.sub(S2, S1);
  if (H.is_zero()) {
    if (R.is_zero()) return jac_dbl(a);
    return {fp_.one(), fp_.one(), fp_.zero()};
  }
  const Fp H2 = fp_.sqr(H);
  const Fp H3 = fp_.mul(H2, H);
  const Fp U1H2 = fp_.mul(U1, H2);
  const Fp X3 = fp_.sub(fp_.sub(fp_.sqr(R), H3), fp_.dbl(U1H2));
  const Fp Y3 = fp_.sub(fp_.mul(R, fp_.sub(U1H2, X3)), fp_.mul(S1, H3));
  const Fp Z3 = fp_.mul(fp_.mul(a.Z, b.Z), H);
  return {X3, Y3, Z3};
}

std::vector<AffinePoint> Curve::batch_normalize(
    const std::vector<JacPoint>& pts) const {
  // Collect nonzero Zs, invert them all with one field inversion.
  std::vector<Fp> zs;
  zs.reserve(pts.size());
  for (const auto& pt : pts) {
    if (!pt.is_infinity()) zs.push_back(pt.Z);
  }
  fp_.batch_inv(zs);
  std::vector<AffinePoint> out(pts.size());
  std::size_t zi = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].is_infinity()) {
      out[i] = AffinePoint::infinity();
      continue;
    }
    const Fp zinv = zs[zi++];
    const Fp zinv2 = fp_.sqr(zinv);
    out[i] = {fp_.mul(pts[i].X, zinv2),
              fp_.mul(pts[i].Y, fp_.mul(zinv2, zinv)), false};
  }
  return out;
}

void Curve::build_base_table() const {
  // Row w holds b * (2^{8w} g) for b = 1..255, all rows built in Jacobian
  // coordinates and normalized with one shared inversion.
  std::vector<JacPoint> flat;
  flat.reserve(kCombWindows * 255);
  JacPoint window_base = to_jac(gen_);
  for (std::size_t w = 0; w < kCombWindows; ++w) {
    JacPoint acc{fp_.one(), fp_.one(), fp_.zero()};
    for (std::size_t b = 1; b <= 255; ++b) {
      acc = jac_add(acc, window_base);
      flat.push_back(acc);
    }
    for (int i = 0; i < 8; ++i) window_base = jac_dbl(window_base);
  }
  const auto affine = batch_normalize(flat);
  base_table_.assign(kCombWindows, {});
  for (std::size_t w = 0; w < kCombWindows; ++w) {
    base_table_[w].assign(affine.begin() + static_cast<std::ptrdiff_t>(255 * w),
                          affine.begin() + static_cast<std::ptrdiff_t>(255 * (w + 1)));
  }
}

JacPoint Curve::mul_base_jac(const FqInt& k) const {
  base_mul_count_.fetch_add(1, std::memory_order_relaxed);
  std::call_once(base_table_once_, [this] { build_base_table(); });
  // Scalars are < q < 2^160: exactly kCombWindows bytes.
  assert(k.bit_length() <= 8 * kCombWindows);
  JacPoint acc{fp_.one(), fp_.one(), fp_.zero()};
  for (std::size_t w = 0; w < kCombWindows; ++w) {
    const std::size_t byte = (k.w[w / 8] >> (8 * (w % 8))) & 0xFF;
    if (byte != 0) {
      acc = jac_add_mixed(acc, base_table_[w][byte - 1]);
    }
  }
  return acc;
}

AffinePoint Curve::mul_base(const FqInt& k) const {
  if (k.is_zero()) return AffinePoint::infinity();
  return to_affine(mul_base_jac(k));
}

AffinePoint Curve::add(const AffinePoint& a, const AffinePoint& b) const {
  if (a.inf) return b;
  if (b.inf) return a;
  return to_affine(jac_add_mixed(to_jac(a), b));
}

AffinePoint Curve::dbl(const AffinePoint& a) const {
  return to_affine(jac_dbl(to_jac(a)));
}

JacPoint Curve::mul_jac(const AffinePoint& pt, const FqInt& k) const {
  scalar_mul_count_.fetch_add(1, std::memory_order_relaxed);
  JacPoint acc{fp_.one(), fp_.one(), fp_.zero()};
  if (pt.inf || k.is_zero()) return acc;
  const std::size_t bits = k.bit_length();
  for (std::size_t i = bits; i-- > 0;) {
    acc = jac_dbl(acc);
    if (k.bit(i)) acc = jac_add_mixed(acc, pt);
  }
  return acc;
}

AffinePoint Curve::mul(const AffinePoint& pt, const FqInt& k) const {
  return to_affine(mul_jac(pt, k));
}

AffinePoint Curve::mul_fq(const AffinePoint& pt, const Fq& k) const {
  return mul(pt, fq_.to_int(k));
}

AffinePoint Curve::msm(const std::vector<AffinePoint>& pts,
                       const std::vector<Fq>& ks) const {
  if (pts.size() != ks.size()) {
    throw std::invalid_argument("Curve::msm: size mismatch");
  }
  // Counts as one exponentiation per term (the paper's accounting unit)
  // regardless of the engine that serves it.
  scalar_mul_count_.fetch_add(pts.size(), std::memory_order_relaxed);
  if (pts.empty()) return AffinePoint::infinity();
  // Ephemeral signed-window tables: narrow width since the build cost is
  // paid by this single chain.
  constexpr unsigned kWindow = 4;
  const WindowTables tables(*this, pts, kWindow, /*precomputed=*/false);
  std::vector<RecodedScalar> recoded;
  recoded.reserve(ks.size());
  for (const auto& k : ks) {
    recoded.push_back(RecodedScalar::recode(fq_.to_int(k), kWindow));
  }
  std::vector<ChainTerm> terms(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    terms[i] = {&tables, i, &recoded[i]};
  }
  return to_affine(windowed_chain(*this, terms));
}

AffinePoint Curve::msm_naive(const std::vector<AffinePoint>& pts,
                             const std::vector<Fq>& ks) const {
  if (pts.size() != ks.size()) {
    throw std::invalid_argument("Curve::msm_naive: size mismatch");
  }
  // Interleaved double-and-add: one shared doubling chain.
  scalar_mul_count_.fetch_add(pts.size(), std::memory_order_relaxed);
  std::vector<FqInt> scalars;
  scalars.reserve(ks.size());
  std::size_t max_bits = 0;
  for (const auto& k : ks) {
    scalars.push_back(fq_.to_int(k));
    max_bits = std::max(max_bits, scalars.back().bit_length());
  }
  JacPoint acc{fp_.one(), fp_.one(), fp_.zero()};
  for (std::size_t i = max_bits; i-- > 0;) {
    acc = jac_dbl(acc);
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (!pts[j].inf && scalars[j].bit(i)) {
        acc = jac_add_mixed(acc, pts[j]);
      }
    }
  }
  return to_affine(acc);
}

AffinePoint Curve::clear_cofactor(const AffinePoint& pt) const {
  cofactor_mul_count_.fetch_add(1, std::memory_order_relaxed);
  // h * pt with a signed fixed window over the wide cofactor: ~|h|/w mixed
  // additions instead of |h|/2 for plain double-and-add.
  constexpr unsigned kWindow = 5;
  const WindowTables tables(*this, std::span<const AffinePoint>(&pt, 1),
                            kWindow, /*precomputed=*/false);
  const RecodedScalar k = RecodedScalar::recode(params_.h, kWindow);
  const ChainTerm term{&tables, 0, &k};
  return to_affine(windowed_chain(*this, std::span<const ChainTerm>(&term, 1)));
}

AffinePoint Curve::random_point(Rng& rng) const {
  for (;;) {
    const Fp x = fp_.random(rng);
    Fp y;
    if (!fp_.sqrt(rhs(x), y)) continue;
    if (y.is_zero()) continue;
    // Randomize the sign of y.
    if ((rng.next_u64() & 1) != 0) y = fp_.neg(y);
    // Clear the cofactor to land in the order-q subgroup.
    const AffinePoint out = clear_cofactor({x, y, false});
    if (!out.inf) return out;
  }
}

AffinePoint Curve::hash_to_point(std::string_view msg) const {
  for (std::uint32_t ctr = 0;; ++ctr) {
    Sha256 h;
    h.update("apks-hash-to-point");
    h.update(msg);
    std::uint8_t cb[4];
    for (int i = 0; i < 4; ++i) {
      cb[i] = static_cast<std::uint8_t>(ctr >> (8 * i));
    }
    h.update(std::span<const std::uint8_t>(cb, 4));
    const auto d1 = h.finish();
    Sha256 h2;
    h2.update("apks-hash-to-point-2");
    h2.update(std::span<const std::uint8_t>(d1.data(), d1.size()));
    const auto d2 = h2.finish();
    std::array<std::uint8_t, 64> wide{};
    std::copy(d1.begin(), d1.end(), wide.begin());
    std::copy(d2.begin(), d2.end(), wide.begin() + 32);
    const Fp x = fp_.from_bytes_mod(wide);
    Fp y;
    if (!fp_.sqrt(rhs(x), y)) continue;
    if (y.is_zero()) continue;
    if ((d2[31] & 1) != 0) y = fp_.neg(y);
    const AffinePoint out = clear_cofactor({x, y, false});
    if (!out.inf) return out;
  }
}

void Curve::serialize(const AffinePoint& pt,
                      std::span<std::uint8_t, kCompressedSize> out) const {
  if (pt.inf) {
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    return;
  }
  const FpInt y_plain = fp_.to_int(pt.y);
  out[0] = static_cast<std::uint8_t>(2 + (y_plain.w[0] & 1));
  const FpInt x_plain = fp_.to_int(pt.x);
  x_plain.to_bytes(std::span<std::uint8_t, 64>(out.data() + 1, 64));
}

AffinePoint Curve::deserialize(
    std::span<const std::uint8_t, kCompressedSize> in) const {
  if (in[0] == 0) return AffinePoint::infinity();
  if (in[0] != 2 && in[0] != 3) {
    throw std::invalid_argument("Curve::deserialize: bad tag byte");
  }
  const FpInt x_plain =
      FpInt::from_bytes(std::span<const std::uint8_t>(in.data() + 1, 64));
  if (x_plain >= fp_.modulus()) {
    throw std::invalid_argument("Curve::deserialize: x out of range");
  }
  const Fp x = fp_.from_int(x_plain);
  Fp y;
  if (!fp_.sqrt(rhs(x), y)) {
    throw std::invalid_argument("Curve::deserialize: x not on curve");
  }
  const bool want_odd = (in[0] == 3);
  if ((fp_.to_int(y).w[0] & 1) != (want_odd ? 1u : 0u)) y = fp_.neg(y);
  return {x, y, false};
}

}  // namespace apks
