// ShardedStore — the cloud server's persistent record source: S IndexStore
// shards (each its own segment chain + shared_mutex) under one directory,
// holding the encrypted-index records of CloudServer in the
// serialize_index wire format.
//
// Directory layout:
//
//   <dir>/STORE          shard count + codec version (checksummed,
//                        written once at creation)
//   <dir>/shard-000/     IndexStore chain (MANIFEST + seg-*.apks)
//   <dir>/shard-001/     ...
//
// Record payload (one segment frame): [u64 id] [str doc_ref]
// [bytes serialize_index(...)]. Records route to shard id % S, so every
// shard holds an id-ascending subsequence and a k-way merge by id restores
// the exact upload order — which is what makes a reloaded CloudServer
// return byte-identical results (same doc_refs, same order) to the server
// that never restarted.
//
// Concurrency: append/put take the target shard's lock exclusively;
// streaming reads (load_all, search, for_each_record) hold every shard
// they touch shared — same contract as CloudServer's record store. Ids
// come from one atomic counter, seeded past the largest id on disk at
// open (open replays every committed frame, which doubles as an
// end-to-end checksum validation of the whole store).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/apks.h"
#include "store/index_store.h"

namespace apks {

struct StoredIndexRecord {
  std::uint64_t id = 0;
  std::string doc_ref;
  EncryptedIndex index;
};

struct ShardedStoreOptions {
  // Shard count used when creating a fresh store; an existing store's
  // STORE file wins on reopen (the on-disk partitioning is fixed).
  std::uint32_t shards = 4;
  IndexStoreOptions segment;
};

struct StoreScanStats {
  std::size_t scanned = 0;
  std::size_t matched = 0;
};

class ShardedStore {
 public:
  // Opens (creating if absent) and crash-recovers every shard.
  ShardedStore(const Pairing& e, std::filesystem::path dir,
               ShardedStoreOptions options = {});

  // Owner upload: assigns the next id, persists, returns the id.
  std::uint64_t append(std::string doc_ref, const EncryptedIndex& index);

  // Write-through path for CloudServer: persist under a caller-chosen id
  // (the server's record id). Keeps the id counter ahead of `id`.
  void put(std::uint64_t id, const std::string& doc_ref,
           const EncryptedIndex& index);

  void flush();  // all shards
  void sync();   // all shards (durability barrier)

  // Every committed record, decoded and k-way-merged into ascending-id
  // (i.e. original upload) order.
  [[nodiscard]] std::vector<StoredIndexRecord> load_all();

  // Streams records shard-by-shard (ascending id within a shard, shard
  // order unspecified) without materializing the whole store.
  void for_each_record(
      const std::function<void(StoredIndexRecord&&)>& fn);

  // Linear scan directly over the on-disk segments, shard-parallel:
  // decodes and tests each record as it streams, never holding more than
  // one record per worker in memory. Results are in ascending-id order —
  // identical to CloudServer::search over the same records. threads == 0
  // uses hardware concurrency (capped at the shard count).
  [[nodiscard]] std::vector<std::string> search(
      const Apks& scheme, const Capability& cap, std::size_t threads = 0,
      StoreScanStats* stats = nullptr);

  // Compacts every shard chain; returns total bytes reclaimed.
  std::uint64_t compact();

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] std::uint64_t next_id() const noexcept {
    return next_id_.load(std::memory_order_relaxed);
  }
  // Aggregated crash-recovery report from open (sums over shards).
  [[nodiscard]] RecoveryStats recovery() const;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  struct Shard {
    explicit Shard(IndexStore s) : store(std::move(s)) {}
    IndexStore store;
    mutable std::shared_mutex mutex;
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t id) {
    return *shards_[id % shards_.size()];
  }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::uint64_t id, const std::string& doc_ref,
      const EncryptedIndex& index) const;

  const Pairing* pairing_;
  std::filesystem::path dir_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace apks
