// ShardedStore — the cloud server's persistent record source: S IndexStore
// shards (each its own segment chain + shared_mutex) under one directory,
// holding the encrypted-index records of CloudServer in the
// serialize_index wire format.
//
// Directory layout:
//
//   <dir>/STORE          shard count + codec version (checksummed,
//                        written once at creation)
//   <dir>/shard-000/     IndexStore chain (MANIFEST + seg-*.apks)
//   <dir>/shard-001/     ...
//
// Record payload (one segment frame): [u64 id] [str doc_ref]
// [bytes serialize_index(...)]. Records route to shard id % S, so every
// shard holds an id-ascending subsequence and a k-way merge by id restores
// the exact upload order — which is what makes a reloaded CloudServer
// return byte-identical results (same doc_refs, same order) to the server
// that never restarted.
//
// Concurrency: append/put take the target shard's lock exclusively;
// streaming reads (load_all, search, for_each_record) hold every shard
// they touch shared — same contract as CloudServer's record store. Ids
// come from one atomic counter, seeded past the largest id on disk at
// open (open replays every committed frame, which doubles as an
// end-to-end checksum validation of the whole store).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/apks.h"
#include "core/backend.h"
#include "store/index_store.h"

namespace apks {

struct StoredIndexRecord {
  std::uint64_t id = 0;
  std::string doc_ref;
  EncryptedIndex index;
};

// Scheme-agnostic record view: the index stays behind the type-erased
// handle its scheme's backend decoded it into.
struct StoredAnyRecord {
  std::uint64_t id = 0;
  std::string doc_ref;
  AnyIndex index;
};

struct ShardedStoreOptions {
  // Shard count used when creating a fresh store; an existing store's
  // STORE file wins on reopen (the on-disk partitioning is fixed).
  std::uint32_t shards = 4;
  IndexStoreOptions segment;
};

struct StoreScanStats {
  std::size_t scanned = 0;
  std::size_t matched = 0;
  // Deadline/cancellation outcome of a controlled scan: the workers
  // stopped mid-stream, so `scanned` covers only the records decoded
  // before the stop and the matches are the prefix each shard reached.
  bool deadline_exceeded = false;
  bool cancelled = false;
};

class ShardedStore {
 public:
  // Opens (creating if absent) and crash-recovers every shard as a legacy
  // basic-APKS store (serialize_index codec, SchemeKind::kApks tag).
  ShardedStore(const Pairing& e, std::filesystem::path dir,
               ShardedStoreOptions options = {});

  // Scheme-aware open: records are encoded/decoded through the backend's
  // codec and the backend's SchemeKind is stamped into the STORE metadata
  // (and each shard manifest). Opening an existing store whose tag differs
  // from the backend's scheme throws — a store ingested under one scheme
  // is refused, never silently mis-parsed, by another. Untagged stores
  // (written before the tag existed) load as basic APKS. The backend must
  // outlive the store.
  ShardedStore(const SearchBackend& backend, std::filesystem::path dir,
               ShardedStoreOptions options = {});

  // Owner upload: assigns the next id, persists, returns the id.
  std::uint64_t append(std::string doc_ref, const EncryptedIndex& index);
  std::uint64_t append_any(std::string doc_ref, const AnyIndex& index);

  // Write-through path for CloudServer: persist under a caller-chosen id
  // (the server's record id). Keeps the id counter ahead of `id`.
  void put(std::uint64_t id, const std::string& doc_ref,
           const EncryptedIndex& index);
  void put_any(std::uint64_t id, const std::string& doc_ref,
               const AnyIndex& index);

  void flush();  // all shards
  void sync();   // all shards (durability barrier)

  // Every committed record, decoded and k-way-merged into ascending-id
  // (i.e. original upload) order. The typed variant requires an
  // APKS-family store (EncryptedIndex payloads).
  [[nodiscard]] std::vector<StoredIndexRecord> load_all();
  [[nodiscard]] std::vector<StoredAnyRecord> load_all_any();

  // Streams records shard-by-shard (ascending id within a shard, shard
  // order unspecified) without materializing the whole store.
  void for_each_record(
      const std::function<void(StoredIndexRecord&&)>& fn);
  void for_each_record_any(
      const std::function<void(StoredAnyRecord&&)>& fn);

  // Segment-aware streaming: each decoded record arrives with the durable
  // identity of the segment holding it and whether that segment is sealed
  // (immutable). CloudServer::load_from uses this to tag its in-memory
  // records for the verdict cache — only sealed segments may be memoized.
  void for_each_record_any_segmented(
      const std::function<void(StoredAnyRecord&&, const SegmentId&,
                               bool sealed)>& fn);

  // Linear scan directly over the on-disk segments, shard-parallel:
  // decodes and tests each record as it streams, never holding more than
  // one record per worker in memory. Results are in ascending-id order —
  // identical to CloudServer::search over the same records. threads == 0
  // uses hardware concurrency (capped at the shard count).
  //
  // `control` is polled per streamed record (the disk scan's block size is
  // one record): a deadline or cancellation stops every shard worker
  // mid-stream and the call throws DeadlineExceeded /
  // ServingError(kCancelled) — with `stats` already filled with the
  // partial progress and outcome flags — unless control.partial_ok, in
  // which case the matches found so far come back with the flags set.
  [[nodiscard]] std::vector<std::string> search(
      const Apks& scheme, const Capability& cap, std::size_t threads = 0,
      StoreScanStats* stats = nullptr, const ServeControl& control = {});

  // Scheme-agnostic variant of the disk scan: prepares the query with the
  // store's backend and matches each record as it streams. Requires the
  // store to have been opened with a backend. Same control contract as
  // search().
  [[nodiscard]] std::vector<std::string> search_any(
      const AnyQuery& query, std::size_t threads = 0,
      StoreScanStats* stats = nullptr, const ServeControl& control = {});

  // Compacts every shard chain; returns total bytes reclaimed.
  std::uint64_t compact();

  [[nodiscard]] std::size_t record_count() const;
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::size_t segment_count() const;
  [[nodiscard]] std::uint64_t next_id() const noexcept {
    return next_id_.load(std::memory_order_relaxed);
  }
  // Aggregated crash-recovery report from open (sums over shards).
  [[nodiscard]] RecoveryStats recovery() const;
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  // The scheme this store's records belong to (from the STORE metadata;
  // untagged legacy stores report kApks).
  [[nodiscard]] SchemeKind scheme() const noexcept { return scheme_; }
  // The codec backend, or nullptr when opened through the legacy ctor.
  [[nodiscard]] const SearchBackend* backend() const noexcept {
    return backend_;
  }
  // Random uid minted when the STORE meta was first written (v3); 0 for
  // stores created before the field existed. Stamped into every SegmentId
  // so identities from different stores never collide in a shared cache.
  [[nodiscard]] std::uint64_t store_uid() const noexcept {
    return store_uid_;
  }

  // Identities of every sealed segment across all shards (unspecified
  // order). Stable until the next compact().
  [[nodiscard]] std::vector<SegmentId> sealed_segment_ids() const;

  // Installs the segment-invalidation hook on every shard: fired after a
  // rotation or compaction commits, with the retired SegmentIds. Runs with
  // the shard's lock held — the hook must not call back into the store
  // (dropping verdict-cache entries is the intended body). Call during
  // setup; not thread-safe against concurrent writes.
  void set_invalidation_hook(SegmentInvalidationHook hook);

 private:
  struct Shard {
    explicit Shard(IndexStore s) : store(std::move(s)) {}
    IndexStore store;
    mutable std::shared_mutex mutex;
  };

  ShardedStore(const Pairing& e, const SearchBackend* backend,
               SchemeKind scheme, std::filesystem::path dir,
               ShardedStoreOptions options);

  [[nodiscard]] Shard& shard_for(std::uint64_t id) {
    return *shards_[id % shards_.size()];
  }
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::uint64_t id, const std::string& doc_ref,
      const AnyIndex& index) const;
  [[nodiscard]] std::vector<std::uint8_t> index_bytes(
      const AnyIndex& index) const;
  [[nodiscard]] AnyIndex decode_index_bytes(
      std::span<const std::uint8_t> data) const;
  void require_apks_family(const char* what) const;

  const Pairing* pairing_;
  const SearchBackend* backend_ = nullptr;
  SchemeKind scheme_ = SchemeKind::kApks;
  std::filesystem::path dir_;
  std::uint64_t store_uid_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace apks
