#include "store/index_store.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "common/bytes.h"
#include "common/crc32.h"
#include "store/fs.h"

namespace apks {
namespace {

[[noreturn]] void fail_io(const std::string& what,
                          const std::filesystem::path& path) {
  throw StoreError(ErrorCode::kIo,
                   what + ": " + path.string() + " (" + std::strerror(errno) +
                       ")",
                   path.string());
}

[[noreturn]] void fail_corrupt(const std::string& what,
                               const std::filesystem::path& path) {
  throw StoreError(ErrorCode::kCorrupt, what + ": " + path.string(),
                   path.string());
}

constexpr char kManifestMagic[8] = {'A', 'P', 'K', 'S', 'M', 'A', 'N', '1'};
// Version 1: no scheme tag (every record is basic-APKS serialize_index).
// Version 2: adds one scheme byte (SchemeKind) after the shard id.
// Version 3: adds the shard's u64 epoch counter after the scheme byte and
//            a u64 seal epoch per sealed-segment entry (durable segment
//            identity for the verdict cache). v1/v2 manifests still load —
//            their sealed segments carry epoch 0 and the counter resumes
//            at 0, which is correct because epoch 0 entries are never
//            re-assigned (rotation pre-increments).
constexpr std::uint32_t kManifestVersionLegacy = 1;
constexpr std::uint32_t kManifestVersionScheme = 2;
constexpr std::uint32_t kManifestVersion = 3;

SchemeKind decode_scheme_byte(std::uint8_t raw, const std::string& what) {
  switch (raw) {
    case static_cast<std::uint8_t>(SchemeKind::kApks):
    case static_cast<std::uint8_t>(SchemeKind::kApksPlus):
    case static_cast<std::uint8_t>(SchemeKind::kMrqed):
      return static_cast<SchemeKind>(raw);
    default:
      throw StoreError(ErrorCode::kCorrupt,
                       what + ": unknown scheme tag " + std::to_string(raw),
                       what);
  }
}

std::vector<std::uint8_t> read_whole_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError(ErrorCode::kIo, "cannot open " + path.string(),
                     path.string());
  }
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

}  // namespace

IndexStore::IndexStore(std::filesystem::path dir, std::uint32_t shard_id,
                       IndexStoreOptions options, SchemeKind scheme)
    : dir_(std::move(dir)),
      shard_id_(shard_id),
      scheme_(scheme),
      options_(options) {
  std::filesystem::create_directories(dir_);
  const std::filesystem::path manifest = dir_ / "MANIFEST";
  if (!std::filesystem::exists(manifest)) {
    // Fresh store: one empty active segment, committed before first use.
    active_.emplace(segment_path(1), shard_id_, 1);
    active_->sync();
    next_seq_ = 2;
    write_manifest();
    recovery_.segments = 1;
    return;
  }
  load_manifest();
}

std::filesystem::path IndexStore::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08" PRIu64 ".apks", seq);
  return dir_ / name;
}

void IndexStore::write_manifest() const {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kManifestMagic),
      sizeof(kManifestMagic)));
  w.u32(kManifestVersion);
  w.u32(shard_id_);
  w.u8(static_cast<std::uint8_t>(scheme_));
  w.u64(epoch_);
  w.u64(active_->info().seq);
  w.u64(next_seq_);
  w.u32(static_cast<std::uint32_t>(sealed_.size()));
  for (const SealedSegment& s : sealed_) {
    w.u64(s.seq);
    w.u64(s.records);
    w.u64(s.bytes);
    w.u64(s.epoch);
  }
  w.u32(crc32(w.data()));

  // Atomic replacement: the old manifest stays valid until the rename.
  const std::filesystem::path tmp = dir_ / "MANIFEST.tmp";
  const std::filesystem::path manifest = dir_ / "MANIFEST";
  {
    std::FILE* f = storefs::open(tmp, "wb");
    if (f == nullptr) fail_io("cannot write manifest", tmp);
    const bool ok = storefs::write(f, w.data().data(), w.size()) &&
                    storefs::sync(f);
    if (!storefs::close(f) || !ok) {
      fail_io("manifest write failed", tmp);
    }
  }
  storefs::rename(tmp, manifest);
  storefs::sync_directory(dir_);
}

void IndexStore::load_manifest() {
  const std::vector<std::uint8_t> data =
      read_whole_file(dir_ / "MANIFEST");
  if (data.size() < sizeof(kManifestMagic) + 4 ||
      std::memcmp(data.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    fail_corrupt("not a manifest", dir_ / "MANIFEST");
  }
  const std::span<const std::uint8_t> body(data.data(), data.size() - 4);
  ByteReader r(body);
  (void)r.raw(sizeof(kManifestMagic));
  if (crc32(body) != ByteReader(std::span<const std::uint8_t>(
                                    data.data() + data.size() - 4, 4))
                         .u32()) {
    fail_corrupt("manifest checksum mismatch", dir_ / "MANIFEST");
  }
  const std::uint32_t version = r.u32();
  if (version != kManifestVersionLegacy &&
      version != kManifestVersionScheme && version != kManifestVersion) {
    fail_corrupt("unsupported manifest version", dir_ / "MANIFEST");
  }
  if (r.u32() != shard_id_) {
    fail_corrupt("manifest shard id mismatch", dir_ / "MANIFEST");
  }
  // Pre-tag manifests predate every non-basic scheme: they can only hold
  // basic-APKS records, so they load as SchemeKind::kApks.
  const SchemeKind on_disk =
      version == kManifestVersionLegacy
          ? SchemeKind::kApks
          : decode_scheme_byte(r.u8(), "manifest " + dir_.string());
  if (on_disk != scheme_) {
    throw std::runtime_error(
        "scheme mismatch: shard at " + dir_.string() + " holds '" +
        std::string(scheme_name(on_disk)) + "' records, opened as '" +
        std::string(scheme_name(scheme_)) + "'");
  }
  epoch_ = version >= kManifestVersion ? r.u64() : 0;
  const std::uint64_t active_seq = r.u64();
  next_seq_ = r.u64();
  const std::uint32_t nsealed = r.u32();
  const std::size_t entry_bytes = version >= kManifestVersion ? 32 : 24;
  if (nsealed > r.remaining() / entry_bytes) {
    fail_corrupt("manifest sealed count exceeds payload", dir_ / "MANIFEST");
  }
  sealed_.clear();
  records_ = 0;
  for (std::uint32_t i = 0; i < nsealed; ++i) {
    SealedSegment s;
    s.seq = r.u64();
    s.records = r.u64();
    s.bytes = r.u64();
    if (version >= kManifestVersion) {
      s.epoch = r.u64();
      epoch_ = std::max(epoch_, s.epoch);
    }
    sealed_.push_back(s);
  }
  if (!r.done()) {
    fail_corrupt("manifest: trailing bytes", dir_ / "MANIFEST");
  }

  // Sealed segments were fsynced before the manifest committed them: any
  // mismatch now is real corruption, not a crash artifact.
  recovery_ = RecoveryStats{};
  for (const SealedSegment& s : sealed_) {
    const SegmentScanResult scan = scan_segment(segment_path(s.seq));
    if (scan.torn_tail() || scan.records != s.records ||
        scan.valid_bytes != s.bytes || scan.info.shard_id != shard_id_) {
      fail_corrupt("sealed segment corrupt", segment_path(s.seq));
    }
    records_ += scan.records;
    ++recovery_.segments;
  }

  // The active segment is where a crashed writer leaves its mark: truncate
  // the torn tail (if any) and resume. A missing file means the crash hit
  // between manifest commit and segment creation — recreate it empty.
  const std::filesystem::path active_path = segment_path(active_seq);
  if (!std::filesystem::exists(active_path)) {
    active_.emplace(active_path, shard_id_, active_seq);
    active_->sync();
  } else {
    SegmentScanResult scan;
    active_ = SegmentWriter::open_for_append(active_path, &scan);
    if (scan.info.shard_id != shard_id_ || scan.info.seq != active_seq) {
      fail_corrupt("active segment header mismatch", active_path);
    }
    recovery_.torn_tail = scan.torn_tail();
    recovery_.torn_bytes = scan.file_bytes - scan.valid_bytes;
    records_ += scan.records;
  }
  ++recovery_.segments;
  recovery_.records = records_;
}

void IndexStore::put(std::span<const std::uint8_t> payload) {
  if (options_.segment_max_bytes != 0 &&
      active_->bytes() + kFrameHeaderSize + payload.size() >
          options_.segment_max_bytes &&
      active_->records() > 0) {
    rotate();
  }
  active_->append(payload);
  ++records_;
  if (options_.sync_every_put) active_->sync();
}

void IndexStore::flush() { active_->flush(); }

void IndexStore::sync() { active_->sync(); }

void IndexStore::fire_invalidation(
    std::span<const SegmentId> retired) const {
  if (invalidation_hook_ && !retired.empty()) invalidation_hook_(retired);
}

void IndexStore::rotate() {
  active_->sync();
  const SealedSegment sealed{active_->info().seq, active_->records(),
                             active_->bytes(), ++epoch_};
  active_->close();
  const std::uint64_t seq = next_seq_++;
  active_.emplace(segment_path(seq), shard_id_, seq);
  active_->sync();
  sealed_.push_back(sealed);
  write_manifest();
  // The just-sealed seq was the active (never-memoized) segment, so there
  // is nothing cached under its new identity — announce it defensively so
  // a listener that guessed identities ahead of the seal drops them.
  const SegmentId announced[] = {id_of(sealed)};
  fire_invalidation(announced);
}

void IndexStore::for_each(
    const std::function<void(std::span<const std::uint8_t>)>& fn) {
  active_->flush();
  for (const SealedSegment& s : sealed_) {
    const SegmentScanResult scan = scan_segment(segment_path(s.seq), fn);
    if (scan.records != s.records) {
      fail_corrupt("sealed segment corrupt", segment_path(s.seq));
    }
  }
  (void)scan_segment(active_->path(), fn);
}

bool IndexStore::for_each_segmented(
    const std::function<bool(std::span<const std::uint8_t>, const SegmentId&,
                             bool sealed)>& fn) {
  active_->flush();
  bool stopped = false;
  for (const SealedSegment& s : sealed_) {
    const SegmentId id = id_of(s);
    const SegmentScanResult scan = scan_segment_until(
        segment_path(s.seq),
        [&](std::span<const std::uint8_t> payload) {
          return fn(payload, id, /*sealed=*/true);
        },
        &stopped);
    if (stopped) return false;
    if (scan.records != s.records) {
      fail_corrupt("sealed segment corrupt", segment_path(s.seq));
    }
  }
  const SegmentId active_id{options_.store_uid, shard_id_,
                            active_->info().seq, 0};
  (void)scan_segment_until(
      active_->path(),
      [&](std::span<const std::uint8_t> payload) {
        return fn(payload, active_id, /*sealed=*/false);
      },
      &stopped);
  return !stopped;
}

std::vector<SegmentId> IndexStore::sealed_segment_ids() const {
  std::vector<SegmentId> ids;
  ids.reserve(sealed_.size());
  for (const SealedSegment& s : sealed_) ids.push_back(id_of(s));
  return ids;
}

std::uint64_t IndexStore::bytes() const noexcept {
  std::uint64_t total = active_->bytes();
  for (const SealedSegment& s : sealed_) total += s.bytes;
  return total;
}

std::uint64_t IndexStore::compact() {
  const std::uint64_t before = bytes();
  std::vector<std::uint64_t> old_seqs;
  std::vector<SegmentId> retired;
  old_seqs.reserve(sealed_.size() + 1);
  retired.reserve(sealed_.size() + 1);
  for (const SealedSegment& s : sealed_) {
    old_seqs.push_back(s.seq);
    retired.push_back(id_of(s));
  }
  old_seqs.push_back(active_->info().seq);
  retired.push_back(
      SegmentId{options_.store_uid, shard_id_, active_->info().seq, 0});

  // Stream every record into one fresh sealed segment.
  const std::uint64_t merged_seq = next_seq_++;
  SegmentWriter merged(segment_path(merged_seq), shard_id_, merged_seq);
  for_each([&](std::span<const std::uint8_t> payload) {
    merged.append(payload);
  });
  merged.sync();
  const SealedSegment entry{merged_seq, merged.records(), merged.bytes(),
                            ++epoch_};
  merged.close();

  // Commit the new chain (merged sealed + fresh active), then drop the old
  // files — a crash before the manifest rename keeps the old chain live.
  active_->close();
  const std::uint64_t active_seq = next_seq_++;
  active_.emplace(segment_path(active_seq), shard_id_, active_seq);
  active_->sync();
  sealed_.assign(1, entry);
  write_manifest();
  fire_invalidation(retired);
  for (const std::uint64_t seq : old_seqs) {
    std::filesystem::remove(segment_path(seq));
  }
  const std::uint64_t after = bytes();
  return before > after ? before - after : 0;
}

}  // namespace apks
