// IndexStore — one shard's persistent record log: a manifest plus a chain
// of segment files (segment.h) in one directory.
//
// Directory layout:
//
//   <dir>/MANIFEST            checksummed list of segments, atomically
//                             replaced (tmp + rename) on every rotation
//   <dir>/seg-00000001.apks   sealed segment (never written again)
//   <dir>/seg-00000002.apks   ...
//   <dir>/seg-00000003.apks   active segment (append target)
//
// Invariants and recovery rules:
//  - Sealed segments were fsynced before the manifest naming them sealed
//    was committed; a torn frame inside one is real corruption and open()
//    throws. The *active* segment may legitimately carry a torn tail after
//    a crash; open() truncates it and resumes appending (RecoveryStats
//    reports what was dropped).
//  - Rotation order: sync active -> create+sync new segment -> commit new
//    manifest (tmp, fsync, rename, fsync dir). A crash between any two
//    steps leaves the previous manifest pointing at the previous active
//    segment, which is still valid; the orphan new file is truncated and
//    reused when its sequence number is reached again.
//  - Payloads are opaque bytes; ShardedStore (sharded_store.h) defines the
//    record encoding. Not thread-safe — callers serialize access
//    (ShardedStore guards each shard with a shared_mutex).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/backend.h"
#include "store/segment.h"

namespace apks {

// Durable identity of one segment, stable across process restarts: the
// owning store's uid (random at store creation; 0 for stores created
// before the field existed), the shard, the segment's sequence number, and
// the epoch assigned when the segment was *sealed* (from the shard's
// monotonically increasing epoch counter, persisted in the v3 manifest).
// Sequence numbers are never reused (next_seq_ is persisted before a seal
// commits) and the epoch makes the identity robust even against manifests
// hand-rolled to replay a seq: two distinct sealed record sets never share
// a SegmentId, which is what lets layers above memoize per-segment
// derivations (the verdict cache) keyed by it. The active segment has no
// epoch yet — it is mutable and must never be memoized; it is reported
// with epoch 0 and sealed=false by the streaming APIs.
struct SegmentId {
  std::uint64_t store_uid = 0;
  std::uint32_t shard = 0;
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;

  [[nodiscard]] bool operator==(const SegmentId& o) const noexcept {
    return store_uid == o.store_uid && shard == o.shard && seq == o.seq &&
           epoch == o.epoch;
  }
};

struct SegmentIdHash {
  [[nodiscard]] std::size_t operator()(const SegmentId& id) const noexcept {
    std::uint64_t h = id.store_uid;
    for (const std::uint64_t v : {static_cast<std::uint64_t>(id.shard),
                                  id.seq, id.epoch}) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

// Fired after a manifest commit that retires segment identities (compact;
// rotate also announces the just-sealed seq defensively). Receivers drop
// any per-segment derivations cached under these ids.
using SegmentInvalidationHook =
    std::function<void(std::span<const SegmentId>)>;

struct IndexStoreOptions {
  // Rotate the active segment once it exceeds this many bytes (header
  // included). Small values are useful in tests to force multi-segment
  // chains; 0 means never rotate.
  std::uint64_t segment_max_bytes = 4u << 20;
  // fsync on every put (durability over throughput). Off by default:
  // callers batch with flush()/sync().
  bool sync_every_put = false;
  // Store uid stamped into the SegmentIds this shard reports (ShardedStore
  // passes its STORE-meta uid down; standalone shards default to 0).
  std::uint64_t store_uid = 0;
};

struct RecoveryStats {
  std::size_t segments = 0;        // segments opened (sealed + active)
  std::size_t records = 0;         // committed records recovered
  std::uint64_t torn_bytes = 0;    // bytes truncated off the active tail
  bool torn_tail = false;          // active segment had a torn tail
};

class IndexStore {
 public:
  // Opens (creating the directory, first segment and manifest if absent)
  // and runs crash recovery. `shard_id` is stamped into segment headers and
  // cross-checked against existing files. `scheme` is stamped into the
  // manifest (v2) so a shard ingested under one scheme's codec is refused
  // by another; version-1 manifests (written before the tag existed) load
  // as legacy basic APKS.
  IndexStore(std::filesystem::path dir, std::uint32_t shard_id,
             IndexStoreOptions options = {},
             SchemeKind scheme = SchemeKind::kApks);

  IndexStore(IndexStore&&) = default;
  IndexStore& operator=(IndexStore&&) = default;

  // Appends one record payload; buffered until flush()/sync().
  void put(std::span<const std::uint8_t> payload);

  void flush();  // push buffered frames to the OS
  void sync();   // fsync the active segment (durability barrier)

  // Streams every committed record, sealed segments first, in append
  // order. Flushes the writer first so the scan sees all records.
  void for_each(
      const std::function<void(std::span<const std::uint8_t>)>& fn);

  // Segment-aware, stop-capable streaming: `fn` receives each committed
  // payload together with the identity of the segment holding it and
  // whether that segment is sealed (immutable — only sealed segments may
  // be memoized by layers above; the active tail reports sealed=false and
  // epoch 0). Returning false stops the stream; the method returns false
  // iff it was stopped early.
  bool for_each_segmented(
      const std::function<bool(std::span<const std::uint8_t>,
                               const SegmentId&, bool sealed)>& fn);

  // Rewrites the whole chain into a single fresh sealed segment and a new
  // empty active segment, dropping nothing (compaction reclaims the space
  // of torn tails and lets a long chain of small segments collapse).
  // Returns bytes reclaimed (old chain size - new chain size).
  std::uint64_t compact();

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return sealed_.size() + 1;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept;
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] SchemeKind scheme() const noexcept { return scheme_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

  // Identities of the sealed (immutable) segments, in chain order. Stable
  // until the next compact() retires them.
  [[nodiscard]] std::vector<SegmentId> sealed_segment_ids() const;
  // Highest epoch assigned by this shard so far (0 for a shard that never
  // sealed a segment, including shards loaded from pre-epoch manifests).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // Installs (or clears, with an empty function) the invalidation hook.
  // Fired synchronously after the manifest commit of rotate()/compact(),
  // i.e. while the caller's shard lock is held — the hook must not call
  // back into the store.
  void set_invalidation_hook(SegmentInvalidationHook hook) {
    invalidation_hook_ = std::move(hook);
  }

 private:
  struct SealedSegment {
    std::uint64_t seq = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    // Epoch assigned at seal time; 0 only for segments sealed before the
    // v3 manifest existed (loaded from v1/v2 manifests).
    std::uint64_t epoch = 0;
  };

  [[nodiscard]] std::filesystem::path segment_path(std::uint64_t seq) const;
  [[nodiscard]] SegmentId id_of(const SealedSegment& s) const noexcept {
    return {options_.store_uid, shard_id_, s.seq, s.epoch};
  }
  void write_manifest() const;
  void load_manifest();
  void rotate();
  void fire_invalidation(std::span<const SegmentId> retired) const;

  std::filesystem::path dir_;
  std::uint32_t shard_id_ = 0;
  SchemeKind scheme_ = SchemeKind::kApks;
  IndexStoreOptions options_;
  std::vector<SealedSegment> sealed_;
  std::uint64_t next_seq_ = 1;  // sequence number for the *next* rotation
  std::uint64_t epoch_ = 0;     // highest seal epoch assigned so far
  std::optional<SegmentWriter> active_;
  std::size_t records_ = 0;
  RecoveryStats recovery_;
  SegmentInvalidationHook invalidation_hook_;
};

}  // namespace apks
