// IndexStore — one shard's persistent record log: a manifest plus a chain
// of segment files (segment.h) in one directory.
//
// Directory layout:
//
//   <dir>/MANIFEST            checksummed list of segments, atomically
//                             replaced (tmp + rename) on every rotation
//   <dir>/seg-00000001.apks   sealed segment (never written again)
//   <dir>/seg-00000002.apks   ...
//   <dir>/seg-00000003.apks   active segment (append target)
//
// Invariants and recovery rules:
//  - Sealed segments were fsynced before the manifest naming them sealed
//    was committed; a torn frame inside one is real corruption and open()
//    throws. The *active* segment may legitimately carry a torn tail after
//    a crash; open() truncates it and resumes appending (RecoveryStats
//    reports what was dropped).
//  - Rotation order: sync active -> create+sync new segment -> commit new
//    manifest (tmp, fsync, rename, fsync dir). A crash between any two
//    steps leaves the previous manifest pointing at the previous active
//    segment, which is still valid; the orphan new file is truncated and
//    reused when its sequence number is reached again.
//  - Payloads are opaque bytes; ShardedStore (sharded_store.h) defines the
//    record encoding. Not thread-safe — callers serialize access
//    (ShardedStore guards each shard with a shared_mutex).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <vector>

#include "core/backend.h"
#include "store/segment.h"

namespace apks {

struct IndexStoreOptions {
  // Rotate the active segment once it exceeds this many bytes (header
  // included). Small values are useful in tests to force multi-segment
  // chains; 0 means never rotate.
  std::uint64_t segment_max_bytes = 4u << 20;
  // fsync on every put (durability over throughput). Off by default:
  // callers batch with flush()/sync().
  bool sync_every_put = false;
};

struct RecoveryStats {
  std::size_t segments = 0;        // segments opened (sealed + active)
  std::size_t records = 0;         // committed records recovered
  std::uint64_t torn_bytes = 0;    // bytes truncated off the active tail
  bool torn_tail = false;          // active segment had a torn tail
};

class IndexStore {
 public:
  // Opens (creating the directory, first segment and manifest if absent)
  // and runs crash recovery. `shard_id` is stamped into segment headers and
  // cross-checked against existing files. `scheme` is stamped into the
  // manifest (v2) so a shard ingested under one scheme's codec is refused
  // by another; version-1 manifests (written before the tag existed) load
  // as legacy basic APKS.
  IndexStore(std::filesystem::path dir, std::uint32_t shard_id,
             IndexStoreOptions options = {},
             SchemeKind scheme = SchemeKind::kApks);

  IndexStore(IndexStore&&) = default;
  IndexStore& operator=(IndexStore&&) = default;

  // Appends one record payload; buffered until flush()/sync().
  void put(std::span<const std::uint8_t> payload);

  void flush();  // push buffered frames to the OS
  void sync();   // fsync the active segment (durability barrier)

  // Streams every committed record, sealed segments first, in append
  // order. Flushes the writer first so the scan sees all records.
  void for_each(
      const std::function<void(std::span<const std::uint8_t>)>& fn);

  // Rewrites the whole chain into a single fresh sealed segment and a new
  // empty active segment, dropping nothing (compaction reclaims the space
  // of torn tails and lets a long chain of small segments collapse).
  // Returns bytes reclaimed (old chain size - new chain size).
  std::uint64_t compact();

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t segment_count() const noexcept {
    return sealed_.size() + 1;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept;
  [[nodiscard]] const RecoveryStats& recovery() const noexcept {
    return recovery_;
  }
  [[nodiscard]] SchemeKind scheme() const noexcept { return scheme_; }
  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }

 private:
  struct SealedSegment {
    std::uint64_t seq = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] std::filesystem::path segment_path(std::uint64_t seq) const;
  void write_manifest() const;
  void load_manifest();
  void rotate();

  std::filesystem::path dir_;
  std::uint32_t shard_id_ = 0;
  SchemeKind scheme_ = SchemeKind::kApks;
  IndexStoreOptions options_;
  std::vector<SealedSegment> sealed_;
  std::uint64_t next_seq_ = 1;  // sequence number for the *next* rotation
  std::optional<SegmentWriter> active_;
  std::size_t records_ = 0;
  RecoveryStats recovery_;
};

}  // namespace apks
