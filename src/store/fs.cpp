#include "store/fs.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/failpoint.h"
#include "core/backend.h"

namespace apks::storefs {

namespace {

[[noreturn]] void fail_io(const std::string& what,
                          const std::filesystem::path& path) {
  throw StoreError(ErrorCode::kIo,
                   what + ": " + path.string() + " (" + std::strerror(errno) +
                       ")",
                   path.string());
}

}  // namespace

std::FILE* open(const std::filesystem::path& path, const char* mode) {
  if (const FailpointFire fire = failpoint(kSiteOpen); fire.fired()) {
    errno = fire.error_code;
    return nullptr;
  }
  return std::fopen(path.c_str(), mode);
}

bool write(std::FILE* f, const void* data, std::size_t len) {
  if (const FailpointFire fire = failpoint(kSiteWrite); fire.fired()) {
    if (fire.action == FailAction::kShortWrite && fire.short_bytes < len) {
      // Persist the prefix for real — the torn-frame state a killed writer
      // leaves — before reporting the failure.
      (void)std::fwrite(data, 1, static_cast<std::size_t>(fire.short_bytes),
                        f);
      (void)std::fflush(f);
    }
    errno = fire.error_code;
    return false;
  }
  return len == 0 || std::fwrite(data, 1, len, f) == len;
}

bool flush(std::FILE* f) {
  if (const FailpointFire fire = failpoint(kSiteFlush); fire.fired()) {
    errno = fire.error_code;
    return false;
  }
  return std::fflush(f) == 0;
}

bool sync(std::FILE* f) {
  if (!flush(f)) return false;
  if (const FailpointFire fire = failpoint(kSiteFsync); fire.fired()) {
    errno = fire.error_code;
    return false;
  }
  return ::fsync(::fileno(f)) == 0;
}

bool close(std::FILE* f) {
  return std::fclose(f) == 0;
}

void rename(const std::filesystem::path& from,
            const std::filesystem::path& to) {
  if (const FailpointFire fire = failpoint(kSiteRename); fire.fired()) {
    errno = fire.error_code;
    fail_io("rename failed", to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    fail_io("rename failed", to);
  }
}

void sync_directory(const std::filesystem::path& dir) {
  if (const FailpointFire fire = failpoint(kSiteDirsync); fire.fired()) {
    errno = fire.error_code;
    fail_io("directory fsync failed", dir);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail_io("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail_io("directory fsync failed", dir);
}

void truncate(const std::filesystem::path& path, std::uint64_t size) {
  if (const FailpointFire fire = failpoint(kSiteTruncate); fire.fired()) {
    errno = fire.error_code;
    fail_io("truncate failed", path);
  }
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    fail_io("truncate failed", path);
  }
}

}  // namespace apks::storefs
