// Append-only, checksummed segment files — the on-disk unit of the storage
// engine (see DESIGN.md "Storage engine").
//
// Layout:
//
//   [magic "APKSSEG1" (8)] [u32 shard_id] [u64 seq]        <- header, 20 B
//   [u32 len] [u32 crc32(payload)] [payload len B]          <- frame 0
//   [u32 len] [u32 crc32(payload)] [payload len B]          <- frame 1
//   ...
//
// All integers little-endian (ByteWriter convention). Frames carry opaque
// payloads; the layers above (IndexStore, ShardedStore, DocumentStore)
// define what a payload means. A frame is *committed* iff its length and
// CRC verify and it lies entirely within the file; a crashed writer leaves
// at most a torn tail — a partial frame or a frame whose CRC does not match
// — which `scan_segment` detects and `SegmentWriter::open_for_append`
// truncates away before resuming (crash recovery).
//
// Writers buffer through stdio; `flush()` pushes frames to the OS (visible
// to concurrent readers of the same file), `sync()` additionally fsyncs to
// the device (durability barrier — rotation and manifest updates use it).
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <span>
#include <vector>

#include "core/backend.h"  // StoreError / ErrorCode

namespace apks {

inline constexpr char kSegmentMagic[8] = {'A', 'P', 'K', 'S',
                                          'S', 'E', 'G', '1'};
inline constexpr std::size_t kSegmentHeaderSize = 8 + 4 + 8;
inline constexpr std::size_t kFrameHeaderSize = 4 + 4;
// Allocation guard for hostile/corrupt length fields; no legitimate record
// (an encrypted index plus a doc_ref) comes anywhere near this.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB

struct SegmentInfo {
  std::uint32_t shard_id = 0;
  std::uint64_t seq = 0;
};

// Result of validating a segment file's frame chain.
struct SegmentScanResult {
  SegmentInfo info;
  std::size_t records = 0;        // committed frames
  std::uint64_t valid_bytes = 0;  // header + committed frames
  std::uint64_t file_bytes = 0;   // actual file size on disk
  // True when the file extends past the last committed frame (partial or
  // CRC-failing tail — the signature of a crashed writer).
  [[nodiscard]] bool torn_tail() const noexcept {
    return file_bytes > valid_bytes;
  }
};

// Streams every committed frame of `path` through `fn` (which may be empty
// to just validate), stopping at the first torn/corrupt frame. Throws
// StoreError (kIo if the file cannot be opened, kCorrupt if its header is
// not a segment header — a torn *tail* is not an error; a bad *header* is).
SegmentScanResult scan_segment(
    const std::filesystem::path& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn = {});

// Stop-capable variant: `fn` returns false to end the scan early (the
// cooperative cancellation/deadline path of the streamed disk scans).
// `stopped` (optional) reports whether `fn` stopped the scan; when it did,
// `records`/`valid_bytes` cover only the frames streamed so far and the
// torn-tail signal is meaningless (the file was not read to its end).
SegmentScanResult scan_segment_until(
    const std::filesystem::path& path,
    const std::function<bool(std::span<const std::uint8_t>)>& fn,
    bool* stopped = nullptr);

class SegmentWriter {
 public:
  // Creates (or truncates) a fresh segment file and writes its header.
  SegmentWriter(const std::filesystem::path& path, std::uint32_t shard_id,
                std::uint64_t seq);

  // Re-opens an existing segment for appending: scans the frame chain,
  // truncates any torn tail, and positions the writer after the last
  // committed frame. `recovered` (optional) receives the scan result.
  [[nodiscard]] static SegmentWriter open_for_append(
      const std::filesystem::path& path, SegmentScanResult* recovered);

  SegmentWriter(SegmentWriter&& other) noexcept;
  SegmentWriter& operator=(SegmentWriter&& other) noexcept;
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;
  ~SegmentWriter();

  // All of these throw StoreError(kIo) when the underlying syscall fails
  // (including injected faults — every file op goes through store/fs.h).
  void append(std::span<const std::uint8_t> payload);
  void flush();
  void sync();
  // Checked close: fclose flushes stdio buffers, so a failure here is data
  // loss and throws. The destructor closes unchecked (abandon()) instead —
  // a writer being torn down mid-error must not throw again.
  void close();

  [[nodiscard]] const SegmentInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  SegmentWriter() = default;

  void abandon() noexcept;  // close without error reporting (destructor)

  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
  SegmentInfo info_;
  std::uint64_t bytes_ = 0;  // header + committed frames written so far
  std::size_t records_ = 0;
};

}  // namespace apks
