#include "store/segment.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "common/bytes.h"
#include "common/crc32.h"

namespace apks {
namespace {

[[noreturn]] void fail(const std::string& what,
                       const std::filesystem::path& path) {
  throw std::runtime_error(what + ": " + path.string() + " (" +
                           std::strerror(errno) + ")");
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

SegmentScanResult scan_segment(
    const std::filesystem::path& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail("scan_segment: cannot open", path);
  SegmentScanResult out;
  try {
    std::uint8_t header[kSegmentHeaderSize];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
        std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      throw std::runtime_error("scan_segment: not a segment file: " +
                               path.string());
    }
    out.info.shard_id = load_u32(header + 8);
    out.info.seq = load_u64(header + 12);
    out.valid_bytes = kSegmentHeaderSize;

    std::vector<std::uint8_t> payload;
    for (;;) {
      std::uint8_t fh[kFrameHeaderSize];
      const std::size_t got = std::fread(fh, 1, sizeof(fh), f);
      if (got != sizeof(fh)) break;  // EOF or partial frame header
      const std::uint32_t len = load_u32(fh);
      const std::uint32_t crc = load_u32(fh + 4);
      if (len > kMaxFramePayload) break;  // corrupt length field
      payload.resize(len);
      if (len != 0 && std::fread(payload.data(), 1, len, f) != len) {
        break;  // torn payload
      }
      if (crc32(payload) != crc) break;  // bit rot / torn write over old data
      out.valid_bytes += kFrameHeaderSize + len;
      ++out.records;
      if (fn) fn(payload);
    }
    out.file_bytes = std::filesystem::file_size(path);
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
  return out;
}

SegmentWriter::SegmentWriter(const std::filesystem::path& path,
                             std::uint32_t shard_id, std::uint64_t seq) {
  path_ = path;
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail("SegmentWriter: cannot create", path);
  info_ = {shard_id, seq};
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kSegmentMagic),
      sizeof(kSegmentMagic)));
  w.u32(shard_id);
  w.u64(seq);
  if (std::fwrite(w.data().data(), 1, w.size(), file_) != w.size()) {
    fail("SegmentWriter: header write failed", path);
  }
  bytes_ = w.size();
}

SegmentWriter SegmentWriter::open_for_append(const std::filesystem::path& path,
                                             SegmentScanResult* recovered) {
  const SegmentScanResult scan = scan_segment(path);
  if (scan.torn_tail()) {
    std::filesystem::resize_file(path, scan.valid_bytes);
  }
  if (recovered != nullptr) *recovered = scan;
  SegmentWriter w;
  w.path_ = path;
  w.file_ = std::fopen(path.c_str(), "ab");
  if (w.file_ == nullptr) fail("SegmentWriter: cannot append to", path);
  w.info_ = scan.info;
  w.bytes_ = scan.valid_bytes;
  w.records_ = scan.records;
  return w;
}

SegmentWriter::SegmentWriter(SegmentWriter&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      info_(other.info_),
      bytes_(other.bytes_),
      records_(other.records_) {
  other.file_ = nullptr;
}

SegmentWriter& SegmentWriter::operator=(SegmentWriter&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    info_ = other.info_;
    bytes_ = other.bytes_;
    records_ = other.records_;
    other.file_ = nullptr;
  }
  return *this;
}

SegmentWriter::~SegmentWriter() { close(); }

void SegmentWriter::append(std::span<const std::uint8_t> payload) {
  if (file_ == nullptr) {
    throw std::logic_error("SegmentWriter: append after close");
  }
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("SegmentWriter: payload exceeds frame limit");
  }
  ByteWriter fh;
  fh.u32(static_cast<std::uint32_t>(payload.size()));
  fh.u32(crc32(payload));
  if (std::fwrite(fh.data().data(), 1, fh.size(), file_) != fh.size() ||
      (!payload.empty() &&
       std::fwrite(payload.data(), 1, payload.size(), file_) !=
           payload.size())) {
    fail("SegmentWriter: frame write failed", path_);
  }
  bytes_ += kFrameHeaderSize + payload.size();
  ++records_;
}

void SegmentWriter::flush() {
  if (file_ != nullptr && std::fflush(file_) != 0) {
    fail("SegmentWriter: flush failed", path_);
  }
}

void SegmentWriter::sync() {
  flush();
  if (file_ != nullptr && ::fsync(::fileno(file_)) != 0) {
    fail("SegmentWriter: fsync failed", path_);
  }
}

void SegmentWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void sync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("sync_directory: cannot open", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) fail("sync_directory: fsync failed", dir);
}

}  // namespace apks
