#include "store/segment.h"

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/crc32.h"
#include "store/fs.h"

namespace apks {
namespace {

[[noreturn]] void fail_io(const std::string& what,
                          const std::filesystem::path& path) {
  throw StoreError(ErrorCode::kIo,
                   what + ": " + path.string() + " (" + std::strerror(errno) +
                       ")",
                   path.string());
}

[[noreturn]] void fail_corrupt(const std::string& what,
                               const std::filesystem::path& path) {
  throw StoreError(ErrorCode::kCorrupt, what + ": " + path.string(),
                   path.string());
}

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

SegmentScanResult scan_segment_impl(
    const std::filesystem::path& path,
    const std::function<bool(std::span<const std::uint8_t>)>& fn,
    bool* stopped) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail_io("scan_segment: cannot open", path);
  SegmentScanResult out;
  if (stopped != nullptr) *stopped = false;
  try {
    std::uint8_t header[kSegmentHeaderSize];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
        std::memcmp(header, kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
      fail_corrupt("scan_segment: not a segment file", path);
    }
    out.info.shard_id = load_u32(header + 8);
    out.info.seq = load_u64(header + 12);
    out.valid_bytes = kSegmentHeaderSize;

    std::vector<std::uint8_t> payload;
    for (;;) {
      std::uint8_t fh[kFrameHeaderSize];
      const std::size_t got = std::fread(fh, 1, sizeof(fh), f);
      if (got != sizeof(fh)) break;  // EOF or partial frame header
      const std::uint32_t len = load_u32(fh);
      const std::uint32_t crc = load_u32(fh + 4);
      if (len > kMaxFramePayload) break;  // corrupt length field
      payload.resize(len);
      if (len != 0 && std::fread(payload.data(), 1, len, f) != len) {
        break;  // torn payload
      }
      if (crc32(payload) != crc) break;  // bit rot / torn write over old data
      out.valid_bytes += kFrameHeaderSize + len;
      ++out.records;
      if (fn && !fn(payload)) {
        if (stopped != nullptr) *stopped = true;
        break;
      }
    }
    std::error_code ec;
    out.file_bytes = std::filesystem::file_size(path, ec);
    if (ec) {
      errno = ec.value();
      fail_io("scan_segment: cannot stat", path);
    }
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
  return out;
}

}  // namespace

SegmentScanResult scan_segment(
    const std::filesystem::path& path,
    const std::function<void(std::span<const std::uint8_t>)>& fn) {
  if (!fn) return scan_segment_impl(path, {}, nullptr);
  return scan_segment_impl(
      path,
      [&fn](std::span<const std::uint8_t> payload) {
        fn(payload);
        return true;
      },
      nullptr);
}

SegmentScanResult scan_segment_until(
    const std::filesystem::path& path,
    const std::function<bool(std::span<const std::uint8_t>)>& fn,
    bool* stopped) {
  return scan_segment_impl(path, fn, stopped);
}

SegmentWriter::SegmentWriter(const std::filesystem::path& path,
                             std::uint32_t shard_id, std::uint64_t seq) {
  path_ = path;
  file_ = storefs::open(path, "wb");
  if (file_ == nullptr) fail_io("SegmentWriter: cannot create", path);
  info_ = {shard_id, seq};
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kSegmentMagic),
      sizeof(kSegmentMagic)));
  w.u32(shard_id);
  w.u64(seq);
  if (!storefs::write(file_, w.data().data(), w.size())) {
    fail_io("SegmentWriter: header write failed", path);
  }
  bytes_ = w.size();
}

SegmentWriter SegmentWriter::open_for_append(const std::filesystem::path& path,
                                             SegmentScanResult* recovered) {
  const SegmentScanResult scan = scan_segment(path);
  if (scan.torn_tail()) {
    storefs::truncate(path, scan.valid_bytes);
  }
  if (recovered != nullptr) *recovered = scan;
  SegmentWriter w;
  w.path_ = path;
  w.file_ = storefs::open(path, "ab");
  if (w.file_ == nullptr) fail_io("SegmentWriter: cannot append to", path);
  w.info_ = scan.info;
  w.bytes_ = scan.valid_bytes;
  w.records_ = scan.records;
  return w;
}

SegmentWriter::SegmentWriter(SegmentWriter&& other) noexcept
    : path_(std::move(other.path_)),
      file_(other.file_),
      info_(other.info_),
      bytes_(other.bytes_),
      records_(other.records_) {
  other.file_ = nullptr;
}

SegmentWriter& SegmentWriter::operator=(SegmentWriter&& other) noexcept {
  if (this != &other) {
    abandon();
    path_ = std::move(other.path_);
    file_ = other.file_;
    info_ = other.info_;
    bytes_ = other.bytes_;
    records_ = other.records_;
    other.file_ = nullptr;
  }
  return *this;
}

SegmentWriter::~SegmentWriter() { abandon(); }

void SegmentWriter::append(std::span<const std::uint8_t> payload) {
  if (file_ == nullptr) {
    throw std::logic_error("SegmentWriter: append after close");
  }
  if (payload.size() > kMaxFramePayload) {
    throw std::invalid_argument("SegmentWriter: payload exceeds frame limit");
  }
  ByteWriter fh;
  fh.u32(static_cast<std::uint32_t>(payload.size()));
  fh.u32(crc32(payload));
  if (!storefs::write(file_, fh.data().data(), fh.size()) ||
      !storefs::write(file_, payload.data(), payload.size())) {
    fail_io("SegmentWriter: frame write failed", path_);
  }
  bytes_ += kFrameHeaderSize + payload.size();
  ++records_;
}

void SegmentWriter::flush() {
  if (file_ != nullptr && !storefs::flush(file_)) {
    fail_io("SegmentWriter: flush failed", path_);
  }
}

void SegmentWriter::sync() {
  if (file_ != nullptr && !storefs::sync(file_)) {
    fail_io("SegmentWriter: fsync failed", path_);
  }
}

void SegmentWriter::close() {
  if (file_ == nullptr) return;
  std::FILE* f = file_;
  file_ = nullptr;
  if (!storefs::close(f)) {
    // fclose flushes stdio buffers: a failure here means buffered frames
    // never reached the OS — data loss, not a cleanup hiccup.
    fail_io("SegmentWriter: close failed", path_);
  }
}

void SegmentWriter::abandon() noexcept {
  if (file_ != nullptr) {
    (void)std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace apks
