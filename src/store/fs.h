// storefs — the storage engine's thin syscall shim.
//
// Every file operation the store performs (open, buffered write, flush,
// fsync, rename, directory sync, truncate) goes through one of these
// wrappers instead of calling stdio/POSIX directly, for two reasons:
//
//   1. Fault injection: each wrapper evaluates a failpoint site
//      ("fs.open", "fs.write", "fs.flush", "fs.fsync", "fs.rename",
//      "fs.dirsync", "fs.truncate" — see common/failpoint.h), so chaos
//      tests can drive the segment/manifest machinery through injected
//      EIO/ENOSPC, short writes (a torn frame really lands on disk) and
//      crash-before-fsync schedules without mocking the filesystem.
//   2. Checked returns: wrappers return false and set errno (or throw
//      StoreError for the path-level ops) so the layers above convert
//      every failure into a typed StoreError — no silently ignored
//      syscall results.
//
// A short-write injection persists `short_bytes` of the payload (flushed
// through stdio so the bytes are really in the file) and then reports
// failure — exactly the on-disk state a writer killed mid-write leaves.
#pragma once

#include <cstdio>
#include <filesystem>

namespace apks::storefs {

// Failpoint site names (armed via Failpoints / APKS_FAILPOINTS).
inline constexpr const char* kSiteOpen = "fs.open";
inline constexpr const char* kSiteWrite = "fs.write";
inline constexpr const char* kSiteFlush = "fs.flush";
inline constexpr const char* kSiteFsync = "fs.fsync";
inline constexpr const char* kSiteRename = "fs.rename";
inline constexpr const char* kSiteDirsync = "fs.dirsync";
inline constexpr const char* kSiteTruncate = "fs.truncate";

// fopen wrapper; nullptr + errno on failure (injected or real).
[[nodiscard]] std::FILE* open(const std::filesystem::path& path,
                              const char* mode);

// Buffered write of exactly `len` bytes; false + errno on failure. An
// injected short write persists a prefix first (see header comment).
[[nodiscard]] bool write(std::FILE* f, const void* data, std::size_t len);

[[nodiscard]] bool flush(std::FILE* f);

// flush + fsync to the device; false + errno on failure.
[[nodiscard]] bool sync(std::FILE* f);

// fclose wrapper. Checked because closing a buffered writer flushes: a
// false return means buffered frames never reached the OS.
[[nodiscard]] bool close(std::FILE* f);

// Atomic replace (::rename); throws StoreError(kIo) on failure.
void rename(const std::filesystem::path& from,
            const std::filesystem::path& to);

// fsyncs the directory entry so a just-created/renamed file survives a
// crash; throws StoreError(kIo) on failure.
void sync_directory(const std::filesystem::path& dir);

// Truncates `path` to `size` bytes; throws StoreError(kIo) on failure.
void truncate(const std::filesystem::path& path, std::uint64_t size);

}  // namespace apks::storefs
