#include "store/sharded_store.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include "common/bytes.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "core/serialize_apks.h"
#include "store/fs.h"

namespace apks {
namespace {

constexpr char kStoreMagic[8] = {'A', 'P', 'K', 'S', 'S', 'T', 'R', '1'};
// Version 1: no scheme tag (every record is basic-APKS serialize_index).
// Version 2: adds one scheme byte (SchemeKind) after the shard count.
// Version 3: adds a random u64 store uid after the scheme byte (stamped
//            into SegmentIds so identities from different stores never
//            collide in a shared verdict cache). The META is written once
//            at creation: pre-v3 stores keep uid 0 for life.
constexpr std::uint32_t kStoreVersionLegacy = 1;
constexpr std::uint32_t kStoreVersionScheme = 2;
constexpr std::uint32_t kStoreVersion = 3;

// Random nonzero uid for a freshly created store. Non-cryptographic — the
// uid only has to make accidental SegmentId collisions across distinct
// stores vanishingly unlikely.
std::uint64_t mint_store_uid() {
  std::random_device rd;
  std::uint64_t uid = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  uid ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return uid != 0 ? uid : 1;
}

std::filesystem::path shard_dir(const std::filesystem::path& dir,
                                std::uint32_t shard) {
  char name[24];
  std::snprintf(name, sizeof(name), "shard-%03u", shard);
  return dir / name;
}

void write_store_meta(const std::filesystem::path& dir, std::uint32_t shards,
                      SchemeKind scheme, std::uint64_t store_uid) {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kStoreMagic),
      sizeof(kStoreMagic)));
  w.u32(kStoreVersion);
  w.u32(shards);
  w.u8(static_cast<std::uint8_t>(scheme));
  w.u64(store_uid);
  w.u32(crc32(w.data()));
  const std::filesystem::path tmp = dir / "STORE.tmp";
  std::FILE* f = storefs::open(tmp, "wb");
  if (f == nullptr) {
    throw StoreError(ErrorCode::kIo, "cannot write " + tmp.string(),
                     tmp.string());
  }
  const bool ok = storefs::write(f, w.data().data(), w.size()) &&
                  storefs::sync(f);
  if (!storefs::close(f) || !ok) {
    throw StoreError(ErrorCode::kIo, "store meta write failed: " + tmp.string(),
                     tmp.string());
  }
  storefs::rename(tmp, dir / "STORE");
  storefs::sync_directory(dir);
}

struct StoreMeta {
  std::uint32_t shards = 0;
  SchemeKind scheme = SchemeKind::kApks;
  std::uint64_t store_uid = 0;
};

StoreMeta read_store_meta(const std::filesystem::path& dir) {
  std::ifstream in(dir / "STORE", std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + (dir / "STORE").string());
  }
  const std::vector<std::uint8_t> data{std::istreambuf_iterator<char>(in),
                                       std::istreambuf_iterator<char>()};
  // v1: magic + version + shards + crc; v2 adds one scheme byte; v3 adds
  // the u64 store uid.
  if ((data.size() != sizeof(kStoreMagic) + 12 &&
       data.size() != sizeof(kStoreMagic) + 13 &&
       data.size() != sizeof(kStoreMagic) + 21) ||
      std::memcmp(data.data(), kStoreMagic, sizeof(kStoreMagic)) != 0) {
    throw std::runtime_error("not a store: " + dir.string());
  }
  const std::span<const std::uint8_t> body(data.data(), data.size() - 4);
  ByteReader r(body);
  (void)r.raw(sizeof(kStoreMagic));
  const std::uint32_t version = r.u32();
  StoreMeta meta;
  meta.shards = r.u32();
  ByteReader crc_r(
      std::span<const std::uint8_t>(data.data() + data.size() - 4, 4));
  if (crc32(body) != crc_r.u32()) {
    throw std::runtime_error("store meta checksum mismatch: " + dir.string());
  }
  if (version == kStoreVersionLegacy) {
    // Pre-tag stores predate every non-basic scheme: legacy basic APKS.
    if (!r.done()) {
      throw std::runtime_error("store meta: trailing bytes");
    }
  } else if (version == kStoreVersionScheme || version == kStoreVersion) {
    const std::uint8_t raw = r.u8();
    if (raw != static_cast<std::uint8_t>(SchemeKind::kApks) &&
        raw != static_cast<std::uint8_t>(SchemeKind::kApksPlus) &&
        raw != static_cast<std::uint8_t>(SchemeKind::kMrqed)) {
      throw std::runtime_error("store meta: unknown scheme tag " +
                               std::to_string(raw));
    }
    meta.scheme = static_cast<SchemeKind>(raw);
    if (version == kStoreVersion) meta.store_uid = r.u64();
    if (!r.done()) {
      throw std::runtime_error("store meta: trailing bytes");
    }
  } else {
    throw std::runtime_error("unsupported store version");
  }
  if (meta.shards == 0 || meta.shards > 4096) {
    throw std::runtime_error("store meta: implausible shard count");
  }
  return meta;
}

// Record payload header (everything except the encrypted index itself).
struct RecordHead {
  std::uint64_t id;
  std::string doc_ref;
  std::span<const std::uint8_t> index_bytes;
};

RecordHead decode_head(std::span<const std::uint8_t> payload) {
  try {
    ByteReader r(payload);
    RecordHead head;
    head.id = r.u64();
    head.doc_ref = r.str();
    head.index_bytes = r.bytes();
    if (!r.done()) {
      throw std::invalid_argument("trailing bytes");
    }
    return head;
  } catch (const std::exception& ex) {
    // A frame that passed its CRC but does not decode is not a crash
    // artifact — it is a codec mismatch or a store bug. Surface loudly.
    throw std::runtime_error(std::string("store record corrupt: ") +
                             ex.what());
  }
}

}  // namespace

ShardedStore::ShardedStore(const Pairing& e, std::filesystem::path dir,
                           ShardedStoreOptions options)
    : ShardedStore(e, nullptr, SchemeKind::kApks, std::move(dir), options) {}

ShardedStore::ShardedStore(const SearchBackend& backend,
                           std::filesystem::path dir,
                           ShardedStoreOptions options)
    : ShardedStore(backend.pairing(), &backend, backend.kind(),
                   std::move(dir), options) {}

ShardedStore::ShardedStore(const Pairing& e, const SearchBackend* backend,
                           SchemeKind scheme, std::filesystem::path dir,
                           ShardedStoreOptions options)
    : pairing_(&e), backend_(backend), scheme_(scheme), dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
  std::uint32_t shards = options.shards;
  if (std::filesystem::exists(dir_ / "STORE")) {
    const StoreMeta meta = read_store_meta(dir_);
    if (meta.scheme != scheme_) {
      throw std::invalid_argument(
          "scheme mismatch: store at " + dir_.string() + " holds '" +
          std::string(scheme_name(meta.scheme)) + "' records, opened as '" +
          std::string(scheme_name(scheme_)) + "'");
    }
    shards = meta.shards;
    store_uid_ = meta.store_uid;
  } else {
    if (shards == 0) {
      throw std::invalid_argument("ShardedStore: shard count must be > 0");
    }
    store_uid_ = mint_store_uid();
    write_store_meta(dir_, shards, scheme_, store_uid_);
  }
  IndexStoreOptions shard_options = options.segment;
  shard_options.store_uid = store_uid_;
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        IndexStore(shard_dir(dir_, s), s, shard_options, scheme_)));
  }
  // Seed the id counter past everything on disk. Replaying every frame
  // here also re-verifies every checksum of the store at open time.
  std::uint64_t max_id = 0;
  for (const auto& shard : shards_) {
    shard->store.for_each([&](std::span<const std::uint8_t> payload) {
      max_id = std::max(max_id, decode_head(payload).id);
    });
  }
  next_id_.store(max_id + 1, std::memory_order_relaxed);
}

void ShardedStore::require_apks_family(const char* what) const {
  if (scheme_ == SchemeKind::kMrqed) {
    throw std::invalid_argument(
        std::string(what) + ": store holds '" +
        std::string(scheme_name(scheme_)) +
        "' records; use the scheme-agnostic (_any) API");
  }
}

std::vector<std::uint8_t> ShardedStore::index_bytes(
    const AnyIndex& index) const {
  if (backend_ != nullptr) return backend_->encode_index(index);
  // Legacy basic-APKS codec (identical bytes to what a backend-opened
  // kApks store writes, so the two open modes interoperate).
  if (index.kind() != SchemeKind::kApks) {
    throw std::invalid_argument(
        "legacy store given an index of scheme '" +
        std::string(scheme_name(index.kind())) + "'");
  }
  return serialize_index(*pairing_, index.as<EncryptedIndex>());
}

AnyIndex ShardedStore::decode_index_bytes(
    std::span<const std::uint8_t> data) const {
  if (backend_ != nullptr) return backend_->decode_index(data);
  return AnyIndex::own(SchemeKind::kApks, deserialize_index(*pairing_, data));
}

std::vector<std::uint8_t> ShardedStore::encode(
    std::uint64_t id, const std::string& doc_ref,
    const AnyIndex& index) const {
  ByteWriter w;
  w.u64(id);
  w.str(doc_ref);
  w.bytes(index_bytes(index));
  return w.take();
}

std::uint64_t ShardedStore::append(std::string doc_ref,
                                   const EncryptedIndex& index) {
  require_apks_family("ShardedStore::append");
  return append_any(std::move(doc_ref), AnyIndex::ref(scheme_, &index));
}

std::uint64_t ShardedStore::append_any(std::string doc_ref,
                                       const AnyIndex& index) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const std::vector<std::uint8_t> payload = encode(id, doc_ref, index);
  Shard& shard = shard_for(id);
  std::unique_lock lock(shard.mutex);
  shard.store.put(payload);
  return id;
}

void ShardedStore::put(std::uint64_t id, const std::string& doc_ref,
                       const EncryptedIndex& index) {
  require_apks_family("ShardedStore::put");
  put_any(id, doc_ref, AnyIndex::ref(scheme_, &index));
}

void ShardedStore::put_any(std::uint64_t id, const std::string& doc_ref,
                           const AnyIndex& index) {
  // Keep the counter strictly ahead so a later append never reuses `id`.
  std::uint64_t expected = next_id_.load(std::memory_order_relaxed);
  while (expected <= id && !next_id_.compare_exchange_weak(
                               expected, id + 1, std::memory_order_relaxed)) {
  }
  const std::vector<std::uint8_t> payload = encode(id, doc_ref, index);
  Shard& shard = shard_for(id);
  std::unique_lock lock(shard.mutex);
  shard.store.put(payload);
}

void ShardedStore::flush() {
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->store.flush();
  }
}

void ShardedStore::sync() {
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->store.sync();
  }
}

void ShardedStore::for_each_record(
    const std::function<void(StoredIndexRecord&&)>& fn) {
  require_apks_family("ShardedStore::for_each_record");
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    shard->store.for_each([&](std::span<const std::uint8_t> payload) {
      RecordHead head = decode_head(payload);
      StoredIndexRecord rec;
      rec.id = head.id;
      rec.doc_ref = std::move(head.doc_ref);
      rec.index = deserialize_index(*pairing_, head.index_bytes);
      fn(std::move(rec));
    });
  }
}

void ShardedStore::for_each_record_any(
    const std::function<void(StoredAnyRecord&&)>& fn) {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    shard->store.for_each([&](std::span<const std::uint8_t> payload) {
      RecordHead head = decode_head(payload);
      StoredAnyRecord rec;
      rec.id = head.id;
      rec.doc_ref = std::move(head.doc_ref);
      rec.index = decode_index_bytes(head.index_bytes);
      fn(std::move(rec));
    });
  }
}

void ShardedStore::for_each_record_any_segmented(
    const std::function<void(StoredAnyRecord&&, const SegmentId&,
                             bool sealed)>& fn) {
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    (void)shard->store.for_each_segmented(
        [&](std::span<const std::uint8_t> payload, const SegmentId& seg,
            bool sealed) {
          RecordHead head = decode_head(payload);
          StoredAnyRecord rec;
          rec.id = head.id;
          rec.doc_ref = std::move(head.doc_ref);
          rec.index = decode_index_bytes(head.index_bytes);
          fn(std::move(rec), seg, sealed);
          return true;
        });
  }
}

std::vector<SegmentId> ShardedStore::sealed_segment_ids() const {
  std::vector<SegmentId> ids;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    const std::vector<SegmentId> shard_ids =
        shard->store.sealed_segment_ids();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  return ids;
}

void ShardedStore::set_invalidation_hook(SegmentInvalidationHook hook) {
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    shard->store.set_invalidation_hook(hook);
  }
}

std::vector<StoredIndexRecord> ShardedStore::load_all() {
  require_apks_family("ShardedStore::load_all");
  std::vector<StoredIndexRecord> out;
  out.reserve(record_count());
  for_each_record([&](StoredIndexRecord&& rec) {
    out.push_back(std::move(rec));
  });
  // Each shard streams in ascending-id order already; a global sort by id
  // restores the original upload order across shards.
  std::sort(out.begin(), out.end(),
            [](const StoredIndexRecord& a, const StoredIndexRecord& b) {
              return a.id < b.id;
            });
  return out;
}

std::vector<StoredAnyRecord> ShardedStore::load_all_any() {
  std::vector<StoredAnyRecord> out;
  out.reserve(record_count());
  for_each_record_any([&](StoredAnyRecord&& rec) {
    out.push_back(std::move(rec));
  });
  std::sort(out.begin(), out.end(),
            [](const StoredAnyRecord& a, const StoredAnyRecord& b) {
              return a.id < b.id;
            });
  return out;
}

namespace {

// Shared shard-parallel streaming machinery of search()/search_any(): the
// cooperative stop state (one atomic, polled once per streamed record by
// every worker) plus the merge/outcome epilogue.
struct ScanControlState {
  using Clock = std::chrono::steady_clock;

  explicit ScanControlState(const ServeControl& control)
      : control_(control),
        has_deadline_(control.deadline_ms != 0),
        deadline_at_(Clock::now() +
                     std::chrono::milliseconds(control.deadline_ms)) {}

  // Why the scan stopped (mirrors SearchEngine's StopReason).
  enum : int { kRun = 0, kStopDeadline = 1, kStopCancelled = 2 };

  [[nodiscard]] bool should_stop() {
    if (stop_.load(std::memory_order_relaxed) != kRun) return true;
    if (control_.cancel != nullptr &&
        control_.cancel->load(std::memory_order_relaxed)) {
      stop_.store(kStopCancelled, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline_ && Clock::now() >= deadline_at_) {
      stop_.store(kStopDeadline, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  [[nodiscard]] int outcome() const {
    return stop_.load(std::memory_order_relaxed);
  }

  // Fills `stats`, then throws on a non-partial_ok truncation.
  void finish(StoreScanStats* stats, std::size_t scanned,
              std::size_t matched) const {
    const int out = outcome();
    if (stats != nullptr) {
      stats->scanned = scanned;
      stats->matched = matched;
      stats->deadline_exceeded = out == kStopDeadline;
      stats->cancelled = out == kStopCancelled;
    }
    if (out == kRun || control_.partial_ok) return;
    if (out == kStopCancelled) {
      throw ServingError(ErrorCode::kCancelled,
                         "store scan cancelled after " +
                             std::to_string(scanned) + " records");
    }
    throw DeadlineExceeded("store scan deadline (" +
                           std::to_string(control_.deadline_ms) +
                           " ms) exceeded after " + std::to_string(scanned) +
                           " records");
  }

 private:
  const ServeControl& control_;
  const bool has_deadline_;
  const Clock::time_point deadline_at_;
  std::atomic<int> stop_{kRun};
};

}  // namespace

std::vector<std::string> ShardedStore::search_any(const AnyQuery& query,
                                                  std::size_t threads,
                                                  StoreScanStats* stats,
                                                  const ServeControl& control) {
  if (backend_ == nullptr) {
    throw std::logic_error(
        "ShardedStore::search_any: store was opened without a backend");
  }
  const SearchBackend& backend = *backend_;
  const AnyPrepared prepared = backend.prepare(query);
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards_.size());

  ScanControlState scan_control(control);
  struct ShardResult {
    std::vector<std::pair<std::uint64_t, std::string>> matches;
    std::size_t scanned = 0;
  };
  std::vector<ShardResult> results(shards_.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  auto worker = [&](std::size_t t) {
    try {
      for (;;) {
        if (scan_control.should_stop()) return;
        const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards_.size()) return;
        Shard& shard = *shards_[s];
        std::shared_lock lock(shard.mutex);
        (void)shard.store.for_each_segmented(
            [&](std::span<const std::uint8_t> payload, const SegmentId&,
                bool) {
              // Record boundary: the only place a disk scan gives up.
              if (scan_control.should_stop()) return false;
              // Chaos tests arm this site with a delay to force deadlines
              // deterministically mid-shard.
              (void)failpoint("store.scan_record");
              RecordHead head = decode_head(payload);
              const AnyIndex index = backend.decode_index(head.index_bytes);
              ++results[s].scanned;
              if (backend.match(prepared, index)) {
                results[s].matches.emplace_back(head.id,
                                                std::move(head.doc_ref));
              }
              return true;
            });
      }
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  std::vector<std::pair<std::uint64_t, std::string>> merged;
  std::size_t scanned = 0;
  for (ShardResult& r : results) {
    scanned += r.scanned;
    merged.insert(merged.end(), std::make_move_iterator(r.matches.begin()),
                  std::make_move_iterator(r.matches.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  scan_control.finish(stats, scanned, merged.size());
  std::vector<std::string> refs;
  refs.reserve(merged.size());
  for (auto& [id, ref] : merged) refs.push_back(std::move(ref));
  return refs;
}

std::vector<std::string> ShardedStore::search(const Apks& scheme,
                                              const Capability& cap,
                                              std::size_t threads,
                                              StoreScanStats* stats,
                                              const ServeControl& control) {
  require_apks_family("ShardedStore::search");
  const PreparedCapability prepared = scheme.prepare(cap);
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, shards_.size());

  ScanControlState scan_control(control);
  struct ShardResult {
    std::vector<std::pair<std::uint64_t, std::string>> matches;
    std::size_t scanned = 0;
  };
  std::vector<ShardResult> results(shards_.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(threads);
  auto worker = [&](std::size_t t) {
    try {
      for (;;) {
        if (scan_control.should_stop()) return;
        const std::size_t s = next.fetch_add(1, std::memory_order_relaxed);
        if (s >= shards_.size()) return;
        Shard& shard = *shards_[s];
        std::shared_lock lock(shard.mutex);
        (void)shard.store.for_each_segmented(
            [&](std::span<const std::uint8_t> payload, const SegmentId&,
                bool) {
              if (scan_control.should_stop()) return false;
              (void)failpoint("store.scan_record");
              RecordHead head = decode_head(payload);
              const EncryptedIndex index =
                  deserialize_index(*pairing_, head.index_bytes);
              ++results[s].scanned;
              if (scheme.search_prepared(prepared, index)) {
                results[s].matches.emplace_back(head.id,
                                                std::move(head.doc_ref));
              }
              return true;
            });
      }
    } catch (...) {
      errors[t] = std::current_exception();
    }
  };

  if (threads <= 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& t : pool) t.join();
  }
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  std::vector<std::pair<std::uint64_t, std::string>> merged;
  std::size_t scanned = 0;
  for (ShardResult& r : results) {
    scanned += r.scanned;
    merged.insert(merged.end(), std::make_move_iterator(r.matches.begin()),
                  std::make_move_iterator(r.matches.end()));
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  scan_control.finish(stats, scanned, merged.size());
  std::vector<std::string> refs;
  refs.reserve(merged.size());
  for (auto& [id, ref] : merged) refs.push_back(std::move(ref));
  return refs;
}

std::uint64_t ShardedStore::compact() {
  std::uint64_t reclaimed = 0;
  for (const auto& shard : shards_) {
    std::unique_lock lock(shard->mutex);
    reclaimed += shard->store.compact();
  }
  return reclaimed;
}

std::size_t ShardedStore::record_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->store.record_count();
  }
  return n;
}

std::uint64_t ShardedStore::bytes() const {
  std::uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->store.bytes();
  }
  return n;
}

std::size_t ShardedStore::segment_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::shared_lock lock(shard->mutex);
    n += shard->store.segment_count();
  }
  return n;
}

RecoveryStats ShardedStore::recovery() const {
  RecoveryStats total;
  for (const auto& shard : shards_) {
    const RecoveryStats& r = shard->store.recovery();
    total.segments += r.segments;
    total.records += r.records;
    total.torn_bytes += r.torn_bytes;
    total.torn_tail = total.torn_tail || r.torn_tail;
  }
  return total;
}

}  // namespace apks
