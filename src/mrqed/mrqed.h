// MRQED^D — Multi-dimensional Range Query over Encrypted Data
// (Shi, Bethencourt, Chan, Song, Perrig — IEEE S&P 2007), the baseline the
// paper compares against in Section VII.
//
// Construction: one binary interval tree per dimension. Encrypting a point
// (v_1, ..., v_D) produces, for every dimension d and every node on
// path(v_d), an AIBE ciphertext of (a) a fixed CHECK constant and (b) the
// d-th multiplicative share of the match flag. A range-query key carries
// AIBE keys for the canonical cover of each dimension's range. Matching
// scans each dimension's cover until a CHECK decrypts (5 pairings per
// probe), then recovers the share; the product of all shares equals the
// flag iff every dimension matched.
//
// Cost profile (what the paper's comparison uses): setup, encryption and
// key generation are O(n) exponentiations; per-index search is ~5n pairings
// — about 5x the n+3 pairings of APKS.
#pragma once

#include <optional>

#include "mrqed/aibe.h"
#include "mrqed/interval_tree.h"

namespace apks {

struct MrqedPublicKey {
  AibeParams aibe;
  // One identity-hash base per (dimension, level): the per-node parameters
  // that give MRQED its linear setup cost.
  std::vector<std::vector<AibeIdBase>> bases;  // [dim][level]
};

struct MrqedMasterKey {
  AibeMasterKey aibe;
};

struct MrqedCiphertext {
  // [dim][level]: check ciphertext + share ciphertext for the path node at
  // that level.
  struct NodeCt {
    AibeCiphertext check;
    AibeCiphertext share;
  };
  std::vector<std::vector<NodeCt>> dims;
};

struct MrqedRange {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

struct MrqedKey {
  struct NodeKey {
    IntervalNode node;
    AibeKey check;
    AibeKey share;
  };
  std::vector<std::vector<NodeKey>> dims;  // canonical cover per dimension
};

class Mrqed {
 public:
  // D dimensions, each over the domain [0, 2^depth).
  Mrqed(const Pairing& pairing, std::size_t dims, std::size_t depth);

  [[nodiscard]] std::size_t dims() const noexcept { return dims_; }
  [[nodiscard]] const Pairing& pairing() const noexcept { return *e_; }
  [[nodiscard]] const IntervalTree& tree() const noexcept { return tree_; }
  // The paper's comparison parameter: n ~ D * (depth + 1) path nodes.
  [[nodiscard]] std::size_t path_nodes_total() const noexcept {
    return dims_ * (tree_.depth() + 1);
  }

  void setup(Rng& rng, MrqedPublicKey& pk, MrqedMasterKey& msk) const;

  [[nodiscard]] MrqedCiphertext encrypt(const MrqedPublicKey& pk,
                                        const std::vector<std::uint64_t>& point,
                                        Rng& rng) const;

  // Key for the hyper-rectangle given by one range per dimension.
  [[nodiscard]] MrqedKey gen_key(const MrqedPublicKey& pk,
                                 const MrqedMasterKey& msk,
                                 const std::vector<MrqedRange>& ranges,
                                 Rng& rng) const;

  struct MatchStats {
    std::size_t pairings = 0;  // 5 per AIBE decryption probe
  };
  [[nodiscard]] bool match(const MrqedCiphertext& ct, const MrqedKey& key,
                           MatchStats* stats = nullptr) const;

  // Server-side pairing preprocessing of a reusable range key (the same
  // optimization the paper applies to both schemes when comparing search).
  struct PreparedNodeKey {
    IntervalNode node;
    std::vector<PreprocessedPairing> check;  // 5 per AIBE key
    std::vector<PreprocessedPairing> share;
  };
  struct PreparedKey {
    std::vector<std::vector<PreparedNodeKey>> dims;
  };
  [[nodiscard]] PreparedKey prepare(const MrqedKey& key) const;
  [[nodiscard]] bool match_prepared(const MrqedCiphertext& ct,
                                    const PreparedKey& key,
                                    MatchStats* stats = nullptr) const;

  [[nodiscard]] GtEl check_constant() const;
  [[nodiscard]] GtEl flag_constant() const;

 private:
  const Pairing* e_;
  Aibe aibe_;
  std::size_t dims_;
  IntervalTree tree_;
};

}  // namespace apks
