#include "mrqed/interval_tree.h"

#include <stdexcept>

namespace apks {

IntervalTree::IntervalTree(std::size_t depth) : depth_(depth) {
  if (depth == 0 || depth > 62) {
    throw std::invalid_argument("IntervalTree: depth out of range");
  }
}

std::vector<IntervalNode> IntervalTree::path(std::uint64_t value) const {
  if (value >= domain_size()) {
    throw std::invalid_argument("IntervalTree: value outside domain");
  }
  std::vector<IntervalNode> nodes;
  nodes.reserve(depth_ + 1);
  for (std::size_t level = 0; level <= depth_; ++level) {
    nodes.push_back({level, value >> (depth_ - level)});
  }
  return nodes;
}

std::vector<IntervalNode> IntervalTree::canonical_cover(
    std::uint64_t lo, std::uint64_t hi) const {
  if (lo > hi || hi >= domain_size()) {
    throw std::invalid_argument("IntervalTree: bad range");
  }
  // Standard segment-tree decomposition on leaf indexes [lo, hi].
  std::vector<IntervalNode> left, right;
  std::uint64_t l = lo, r = hi + 1;  // half-open [l, r)
  std::size_t level = depth_;
  while (l < r) {
    if ((l & 1) != 0) {
      left.push_back({level, l});
      ++l;
    }
    if ((r & 1) != 0) {
      --r;
      right.push_back({level, r});
    }
    l >>= 1;
    r >>= 1;
    --level;
  }
  for (std::size_t i = right.size(); i-- > 0;) left.push_back(right[i]);
  return left;
}

std::string IntervalTree::node_id(std::size_t dim, const IntervalNode& n) {
  return "mrqed:" + std::to_string(dim) + ":" + std::to_string(n.level) +
         ":" + std::to_string(n.index);
}

}  // namespace apks
