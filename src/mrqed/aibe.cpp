#include "mrqed/aibe.h"

namespace apks {

Aibe::SetupResult Aibe::setup(Rng& rng) const {
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  SetupResult out;
  out.msk.w = fq.random_nonzero(rng);
  out.msk.t1 = fq.random_nonzero(rng);
  out.msk.t2 = fq.random_nonzero(rng);
  out.msk.t3 = fq.random_nonzero(rng);
  out.msk.t4 = fq.random_nonzero(rng);
  const auto& g = curve.generator();
  out.params.v1 = curve.mul_fq(g, out.msk.t1);
  out.params.v2 = curve.mul_fq(g, out.msk.t2);
  out.params.v3 = curve.mul_fq(g, out.msk.t3);
  out.params.v4 = curve.mul_fq(g, out.msk.t4);
  out.params.omega = e_->gt_pow(
      e_->gt_generator(), fq.mul(fq.mul(out.msk.t1, out.msk.t2), out.msk.w));
  return out;
}

AibeIdBase Aibe::make_id_base(Rng& rng) const {
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  return {curve.mul_base_fq(fq.random_nonzero(rng)),
          curve.mul_base_fq(fq.random_nonzero(rng))};
}

AffinePoint Aibe::f_of(const AibeIdBase& base, std::string_view id) const {
  const Fq h = hash_to_fq(e_->fq(), std::string("aibe:") + std::string(id));
  return e_->curve().add(base.g0, e_->curve().mul_fq(base.g1, h));
}

AibeKey Aibe::extract(const AibeMasterKey& msk, const AibeIdBase& base,
                      std::string_view id, Rng& rng) const {
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  const AffinePoint f = f_of(base, id);
  const Fq r1 = fq.random_nonzero(rng);
  const Fq r2 = fq.random_nonzero(rng);
  AibeKey key;
  // d0 = g^{r1 t1 t2 + r2 t3 t4}
  key.d0 = curve.mul_fq(
      curve.generator(),
      fq.add(fq.mul(r1, fq.mul(msk.t1, msk.t2)),
             fq.mul(r2, fq.mul(msk.t3, msk.t4))));
  // d1 = g^{-w t2} F^{-r1 t2},  d2 = g^{-w t1} F^{-r1 t1}
  key.d1 = curve.add(
      curve.mul_base_fq(fq.neg(fq.mul(msk.w, msk.t2))),
      curve.mul_fq(f, fq.neg(fq.mul(r1, msk.t2))));
  key.d2 = curve.add(
      curve.mul_base_fq(fq.neg(fq.mul(msk.w, msk.t1))),
      curve.mul_fq(f, fq.neg(fq.mul(r1, msk.t1))));
  // d3 = F^{-r2 t4},  d4 = F^{-r2 t3}
  key.d3 = curve.mul_fq(f, fq.neg(fq.mul(r2, msk.t4)));
  key.d4 = curve.mul_fq(f, fq.neg(fq.mul(r2, msk.t3)));
  return key;
}

AibeCiphertext Aibe::encrypt(const AibeParams& params, const AibeIdBase& base,
                             std::string_view id, const GtEl& m,
                             Rng& rng) const {
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  const AffinePoint f = f_of(base, id);
  const Fq s = fq.random_nonzero(rng);
  const Fq s1 = fq.random(rng);
  const Fq s2 = fq.random(rng);
  AibeCiphertext ct;
  ct.cprime = e_->gt_mul(e_->gt_pow(params.omega, s), m);
  ct.c0 = curve.mul_fq(f, s);
  ct.c1 = curve.mul_fq(params.v1, fq.sub(s, s1));
  ct.c2 = curve.mul_fq(params.v2, s1);
  ct.c3 = curve.mul_fq(params.v3, fq.sub(s, s2));
  ct.c4 = curve.mul_fq(params.v4, s2);
  return ct;
}

GtEl Aibe::decrypt(const AibeCiphertext& ct, const AibeKey& key) const {
  // One shared final exponentiation across the 5 pairings.
  const Fp2& fp2 = e_->fp2();
  Fp2El f = e_->miller(ct.c0, key.d0);
  f = fp2.mul(f, e_->miller(ct.c1, key.d1));
  f = fp2.mul(f, e_->miller(ct.c2, key.d2));
  f = fp2.mul(f, e_->miller(ct.c3, key.d3));
  f = fp2.mul(f, e_->miller(ct.c4, key.d4));
  return e_->gt_mul(ct.cprime, e_->final_exp(f));
}

}  // namespace apks
