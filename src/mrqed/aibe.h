// Anonymous IBE in the Boyen-Waters (CRYPTO 2006) style, the AIBE family
// MRQED builds on. Prime-order symmetric-pairing instantiation with
// linear-splitting randomization; ciphertexts reveal nothing about the
// identity and decryption costs exactly 5 pairings — the constant behind
// the paper's "MRQED search takes 5n pairings" comparison.
#pragma once

#include <string_view>

#include "pairing/pairing.h"

namespace apks {

// Public parameters. F(id) = g0 * g1^{H(id)} is the identity hash; (g0, g1)
// pairs are supplied per use-site (MRQED issues one pair per
// dimension/level, giving its O(n) setup cost).
struct AibeParams {
  GtEl omega;          // e(g,g)^{t1 t2 w}
  AffinePoint v1, v2, v3, v4;  // g^{t1..t4}
};

struct AibeMasterKey {
  Fq w{}, t1{}, t2{}, t3{}, t4{};
};

// An (g0, g1) identity-hash instance.
struct AibeIdBase {
  AffinePoint g0, g1;
};

struct AibeCiphertext {
  GtEl cprime;                      // Omega^s * m
  AffinePoint c0, c1, c2, c3, c4;   // F^s, v1^{s-s1}, v2^{s1}, v3^{s-s2}, v4^{s2}
};

struct AibeKey {
  AffinePoint d0, d1, d2, d3, d4;
};

class Aibe {
 public:
  explicit Aibe(const Pairing& pairing) : e_(&pairing) {}

  struct SetupResult {
    AibeParams params;
    AibeMasterKey msk;
  };
  [[nodiscard]] SetupResult setup(Rng& rng) const;

  // Fresh identity-hash base (two exponentiations).
  [[nodiscard]] AibeIdBase make_id_base(Rng& rng) const;

  [[nodiscard]] AibeKey extract(const AibeMasterKey& msk,
                                const AibeIdBase& base, std::string_view id,
                                Rng& rng) const;

  [[nodiscard]] AibeCiphertext encrypt(const AibeParams& params,
                                       const AibeIdBase& base,
                                       std::string_view id, const GtEl& m,
                                       Rng& rng) const;

  // 5 pairings. Returns m on identity match, a random-looking GT element
  // otherwise (anonymity: the mismatch is undetectable without a reference
  // plaintext).
  [[nodiscard]] GtEl decrypt(const AibeCiphertext& ct,
                             const AibeKey& key) const;

 private:
  [[nodiscard]] AffinePoint f_of(const AibeIdBase& base,
                                 std::string_view id) const;

  const Pairing* e_;
};

}  // namespace apks
