// Wire encodings for MRQED^D objects (65-byte compressed points, 65-byte
// compressed GT elements), used by the sizes table and round-trip tests.
#pragma once

#include "common/bytes.h"
#include "mrqed/mrqed.h"

namespace apks {

[[nodiscard]] std::vector<std::uint8_t> serialize_mrqed_ciphertext(
    const Pairing& e, const MrqedCiphertext& ct);
[[nodiscard]] MrqedCiphertext deserialize_mrqed_ciphertext(
    const Pairing& e, std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_mrqed_key(
    const Pairing& e, const MrqedKey& key);
[[nodiscard]] MrqedKey deserialize_mrqed_key(
    const Pairing& e, std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_mrqed_public_key(
    const Pairing& e, const MrqedPublicKey& pk);
[[nodiscard]] MrqedPublicKey deserialize_mrqed_public_key(
    const Pairing& e, std::span<const std::uint8_t> data);

[[nodiscard]] std::vector<std::uint8_t> serialize_mrqed_master_key(
    const Pairing& e, const MrqedMasterKey& msk);
[[nodiscard]] MrqedMasterKey deserialize_mrqed_master_key(
    const Pairing& e, std::span<const std::uint8_t> data);

}  // namespace apks
