// Binary interval trees for MRQED (Shi et al., S&P 2007).
//
// The domain [0, 2^depth) is organized as a perfect binary tree; a value's
// ciphertext covers its root-to-leaf path (depth+1 node ids), and an
// arbitrary range decomposes into O(2*depth) canonical nodes, so a range
// key matches a value iff the canonical cover intersects the path — which
// happens at exactly one node.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apks {

struct IntervalNode {
  std::size_t level = 0;   // 0 = root
  std::uint64_t index = 0;  // position within the level

  friend bool operator==(const IntervalNode&, const IntervalNode&) = default;
};

class IntervalTree {
 public:
  explicit IntervalTree(std::size_t depth);

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t domain_size() const noexcept {
    return std::uint64_t{1} << depth_;
  }

  // The depth+1 nodes on the path from the root to leaf `value`.
  [[nodiscard]] std::vector<IntervalNode> path(std::uint64_t value) const;

  // Minimal canonical cover of [lo, hi] (inclusive): disjoint nodes whose
  // union is exactly the range. At most 2*depth nodes.
  [[nodiscard]] std::vector<IntervalNode> canonical_cover(
      std::uint64_t lo, std::uint64_t hi) const;

  // [lo, hi] covered by node.
  [[nodiscard]] std::uint64_t node_lo(const IntervalNode& n) const noexcept {
    return n.index << (depth_ - n.level);
  }
  [[nodiscard]] std::uint64_t node_hi(const IntervalNode& n) const noexcept {
    return ((n.index + 1) << (depth_ - n.level)) - 1;
  }

  // Stable identity string for hashing into the AIBE identity space.
  [[nodiscard]] static std::string node_id(std::size_t dim,
                                           const IntervalNode& n);

 private:
  std::size_t depth_;
};

}  // namespace apks
