// SearchBackend adapter for the MRQED^D baseline, so the Section VII
// comparison scheme is served through the exact batch/parallel/metrics
// path as APKS — honest apples-to-apples numbers instead of standalone
// bench loops.
//
// Indexes are MrqedCiphertext (one AIBE check+share pair per path node per
// dimension), queries are MrqedKey (AIBE keys over the canonical cover of
// each range), prepared queries are Mrqed::PreparedKey (the same pairing
// preprocessing the paper applies to both schemes when comparing search).
#pragma once

#include "core/backend.h"
#include "mrqed/mrqed.h"

namespace apks {

class MrqedBackend : public SearchBackend {
 public:
  explicit MrqedBackend(const Mrqed& scheme, Rng* rng = nullptr)
      : SearchBackend({&scheme.pairing(), rng}), scheme_(&scheme) {}

  [[nodiscard]] SchemeKind kind() const noexcept override {
    return SchemeKind::kMrqed;
  }
  [[nodiscard]] const Mrqed& scheme() const noexcept { return *scheme_; }

  [[nodiscard]] AnyIndex wrap_index(MrqedCiphertext ct) const {
    return AnyIndex::own(kind(), std::move(ct));
  }
  [[nodiscard]] AnyQuery wrap_query(MrqedKey key) const {
    return AnyQuery::own(kind(), std::move(key));
  }

  [[nodiscard]] std::vector<std::uint8_t> encode_index(
      const AnyIndex& index) const override;
  [[nodiscard]] AnyIndex decode_index(
      std::span<const std::uint8_t> data) const override;
  [[nodiscard]] std::vector<std::uint8_t> encode_query(
      const AnyQuery& query) const override;
  [[nodiscard]] AnyQuery decode_query(
      std::span<const std::uint8_t> data) const override;

  [[nodiscard]] QueryDigest digest(const AnyQuery& query) const override;
  [[nodiscard]] AnyPrepared prepare(const AnyQuery& query) const override;
  [[nodiscard]] bool match(const AnyPrepared& prepared,
                           const AnyIndex& index) const override;

  [[nodiscard]] std::vector<std::uint8_t> query_message(
      const AnyQuery& query, const std::string& issuer) const override;

 private:
  const Mrqed* scheme_;
};

}  // namespace apks
