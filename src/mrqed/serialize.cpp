#include "mrqed/serialize.h"

#include <stdexcept>

#include "hpe/serialize.h"

namespace apks {

namespace {

void write_aibe_ct(const Pairing& e, const AibeCiphertext& ct,
                   ByteWriter& w) {
  write_gt(e, ct.cprime, w);
  for (const auto* pt : {&ct.c0, &ct.c1, &ct.c2, &ct.c3, &ct.c4}) {
    write_point(e.curve(), *pt, w);
  }
}

AibeCiphertext read_aibe_ct(const Pairing& e, ByteReader& r) {
  AibeCiphertext ct;
  ct.cprime = read_gt(e, r);
  for (auto* pt : {&ct.c0, &ct.c1, &ct.c2, &ct.c3, &ct.c4}) {
    *pt = read_point(e.curve(), r);
  }
  return ct;
}

void write_aibe_key(const Pairing& e, const AibeKey& key, ByteWriter& w) {
  for (const auto* pt : {&key.d0, &key.d1, &key.d2, &key.d3, &key.d4}) {
    write_point(e.curve(), *pt, w);
  }
}

AibeKey read_aibe_key(const Pairing& e, ByteReader& r) {
  AibeKey key;
  for (auto* pt : {&key.d0, &key.d1, &key.d2, &key.d3, &key.d4}) {
    *pt = read_point(e.curve(), r);
  }
  return key;
}

}  // namespace

std::vector<std::uint8_t> serialize_mrqed_ciphertext(
    const Pairing& e, const MrqedCiphertext& ct) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(ct.dims.size()));
  for (const auto& dim : ct.dims) {
    w.u32(static_cast<std::uint32_t>(dim.size()));
    for (const auto& node : dim) {
      write_aibe_ct(e, node.check, w);
      write_aibe_ct(e, node.share, w);
    }
  }
  return w.take();
}

MrqedCiphertext deserialize_mrqed_ciphertext(
    const Pairing& e, std::span<const std::uint8_t> data) {
  ByteReader r(data);
  MrqedCiphertext ct;
  const std::uint32_t dims = r.u32();
  if (dims > r.remaining()) {
    throw std::invalid_argument("mrqed ciphertext: dim count exceeds payload");
  }
  ct.dims.resize(dims);
  for (auto& dim : ct.dims) {
    const std::uint32_t nodes = r.u32();
    if (nodes > r.remaining() / (2 * 6 * 65)) {
      throw std::invalid_argument("mrqed ciphertext: node count bomb");
    }
    dim.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      MrqedCiphertext::NodeCt node;
      node.check = read_aibe_ct(e, r);
      node.share = read_aibe_ct(e, r);
      dim.push_back(std::move(node));
    }
  }
  if (!r.done()) {
    throw std::invalid_argument("mrqed ciphertext: trailing bytes");
  }
  return ct;
}

std::vector<std::uint8_t> serialize_mrqed_key(const Pairing& e,
                                              const MrqedKey& key) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(key.dims.size()));
  for (const auto& dim : key.dims) {
    w.u32(static_cast<std::uint32_t>(dim.size()));
    for (const auto& node : dim) {
      w.u32(static_cast<std::uint32_t>(node.node.level));
      w.u64(node.node.index);
      write_aibe_key(e, node.check, w);
      write_aibe_key(e, node.share, w);
    }
  }
  return w.take();
}

MrqedKey deserialize_mrqed_key(const Pairing& e,
                               std::span<const std::uint8_t> data) {
  ByteReader r(data);
  MrqedKey key;
  const std::uint32_t dims = r.u32();
  if (dims > r.remaining()) {
    throw std::invalid_argument("mrqed key: dim count exceeds payload");
  }
  key.dims.resize(dims);
  for (auto& dim : key.dims) {
    const std::uint32_t nodes = r.u32();
    if (nodes > r.remaining() / (2 * 5 * 65)) {
      throw std::invalid_argument("mrqed key: node count bomb");
    }
    dim.reserve(nodes);
    for (std::uint32_t i = 0; i < nodes; ++i) {
      MrqedKey::NodeKey node;
      node.node.level = r.u32();
      node.node.index = r.u64();
      node.check = read_aibe_key(e, r);
      node.share = read_aibe_key(e, r);
      dim.push_back(std::move(node));
    }
  }
  if (!r.done()) throw std::invalid_argument("mrqed key: trailing bytes");
  return key;
}

std::vector<std::uint8_t> serialize_mrqed_public_key(
    const Pairing& e, const MrqedPublicKey& pk) {
  ByteWriter w;
  write_gt(e, pk.aibe.omega, w);
  for (const auto* pt :
       {&pk.aibe.v1, &pk.aibe.v2, &pk.aibe.v3, &pk.aibe.v4}) {
    write_point(e.curve(), *pt, w);
  }
  w.u32(static_cast<std::uint32_t>(pk.bases.size()));
  for (const auto& dim : pk.bases) {
    w.u32(static_cast<std::uint32_t>(dim.size()));
    for (const auto& base : dim) {
      write_point(e.curve(), base.g0, w);
      write_point(e.curve(), base.g1, w);
    }
  }
  return w.take();
}

MrqedPublicKey deserialize_mrqed_public_key(
    const Pairing& e, std::span<const std::uint8_t> data) {
  ByteReader r(data);
  MrqedPublicKey pk;
  pk.aibe.omega = read_gt(e, r);
  for (auto* pt : {&pk.aibe.v1, &pk.aibe.v2, &pk.aibe.v3, &pk.aibe.v4}) {
    *pt = read_point(e.curve(), r);
  }
  const std::uint32_t dims = r.u32();
  if (dims > r.remaining()) {
    throw std::invalid_argument("mrqed public key: dim count exceeds payload");
  }
  pk.bases.resize(dims);
  for (auto& dim : pk.bases) {
    const std::uint32_t levels = r.u32();
    if (levels > r.remaining() / (2 * 65)) {
      throw std::invalid_argument("mrqed public key: level count bomb");
    }
    dim.reserve(levels);
    for (std::uint32_t i = 0; i < levels; ++i) {
      AibeIdBase base;
      base.g0 = read_point(e.curve(), r);
      base.g1 = read_point(e.curve(), r);
      dim.push_back(base);
    }
  }
  if (!r.done()) {
    throw std::invalid_argument("mrqed public key: trailing bytes");
  }
  return pk;
}

std::vector<std::uint8_t> serialize_mrqed_master_key(
    const Pairing& e, const MrqedMasterKey& msk) {
  ByteWriter w;
  for (const auto* s : {&msk.aibe.w, &msk.aibe.t1, &msk.aibe.t2,
                        &msk.aibe.t3, &msk.aibe.t4}) {
    write_fq(e.fq(), *s, w);
  }
  return w.take();
}

MrqedMasterKey deserialize_mrqed_master_key(
    const Pairing& e, std::span<const std::uint8_t> data) {
  ByteReader r(data);
  MrqedMasterKey msk;
  for (auto* s : {&msk.aibe.w, &msk.aibe.t1, &msk.aibe.t2, &msk.aibe.t3,
                  &msk.aibe.t4}) {
    *s = read_fq(e.fq(), r);
  }
  if (!r.done()) {
    throw std::invalid_argument("mrqed master key: trailing bytes");
  }
  return msk;
}

}  // namespace apks
