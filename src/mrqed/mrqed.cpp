#include "mrqed/mrqed.h"

#include <array>
#include <stdexcept>

namespace apks {

Mrqed::Mrqed(const Pairing& pairing, std::size_t dims, std::size_t depth)
    : e_(&pairing), aibe_(pairing), dims_(dims), tree_(depth) {
  if (dims == 0) throw std::invalid_argument("Mrqed: dims == 0");
}

GtEl Mrqed::check_constant() const {
  return e_->gt_pow(e_->gt_generator(),
                    hash_to_fq(e_->fq(), "mrqed:check-constant"));
}

GtEl Mrqed::flag_constant() const {
  return e_->gt_pow(e_->gt_generator(),
                    hash_to_fq(e_->fq(), "mrqed:flag-constant"));
}

void Mrqed::setup(Rng& rng, MrqedPublicKey& pk, MrqedMasterKey& msk) const {
  auto s = aibe_.setup(rng);
  pk.aibe = s.params;
  msk.aibe = s.msk;
  pk.bases.assign(dims_, {});
  for (std::size_t d = 0; d < dims_; ++d) {
    pk.bases[d].reserve(tree_.depth() + 1);
    for (std::size_t l = 0; l <= tree_.depth(); ++l) {
      pk.bases[d].push_back(aibe_.make_id_base(rng));
    }
  }
}

MrqedCiphertext Mrqed::encrypt(const MrqedPublicKey& pk,
                               const std::vector<std::uint64_t>& point,
                               Rng& rng) const {
  if (point.size() != dims_) {
    throw std::invalid_argument("Mrqed::encrypt: arity mismatch");
  }
  const FqField& fq = e_->fq();
  // Multiplicative shares of the flag: flag = prod_d share_d.
  std::vector<GtEl> shares(dims_);
  Fq exp_acc = fq.zero();
  std::vector<Fq> exps(dims_);
  for (std::size_t d = 0; d + 1 < dims_; ++d) {
    exps[d] = fq.random(rng);
    exp_acc = fq.add(exp_acc, exps[d]);
  }
  // flag = gT^f: last share gets f - sum of others, with the flag exponent
  // fixed by construction of flag_constant().
  const Fq flag_exp = hash_to_fq(fq, "mrqed:flag-constant");
  exps[dims_ - 1] = fq.sub(flag_exp, exp_acc);
  for (std::size_t d = 0; d < dims_; ++d) {
    shares[d] = e_->gt_pow(e_->gt_generator(), exps[d]);
  }

  const GtEl check = check_constant();
  MrqedCiphertext ct;
  ct.dims.assign(dims_, {});
  for (std::size_t d = 0; d < dims_; ++d) {
    const auto path = tree_.path(point[d]);
    ct.dims[d].reserve(path.size());
    for (const auto& node : path) {
      const std::string id = IntervalTree::node_id(d, node);
      const AibeIdBase& base = pk.bases[d][node.level];
      MrqedCiphertext::NodeCt nct{
          aibe_.encrypt(pk.aibe, base, id, check, rng),
          aibe_.encrypt(pk.aibe, base, id, shares[d], rng)};
      ct.dims[d].push_back(std::move(nct));
    }
  }
  return ct;
}

MrqedKey Mrqed::gen_key(const MrqedPublicKey& pk, const MrqedMasterKey& msk,
                        const std::vector<MrqedRange>& ranges,
                        Rng& rng) const {
  if (ranges.size() != dims_) {
    throw std::invalid_argument("Mrqed::gen_key: arity mismatch");
  }
  MrqedKey key;
  key.dims.assign(dims_, {});
  for (std::size_t d = 0; d < dims_; ++d) {
    for (const auto& node : tree_.canonical_cover(ranges[d].lo,
                                                  ranges[d].hi)) {
      const std::string id = IntervalTree::node_id(d, node);
      const AibeIdBase& base = pk.bases[d][node.level];
      key.dims[d].push_back({node,
                             aibe_.extract(msk.aibe, base, id, rng),
                             aibe_.extract(msk.aibe, base, id, rng)});
    }
  }
  return key;
}

Mrqed::PreparedKey Mrqed::prepare(const MrqedKey& key) const {
  auto prepare_aibe = [&](const AibeKey& k) {
    std::vector<PreprocessedPairing> out;
    out.reserve(5);
    out.push_back(e_->preprocess(k.d0));
    out.push_back(e_->preprocess(k.d1));
    out.push_back(e_->preprocess(k.d2));
    out.push_back(e_->preprocess(k.d3));
    out.push_back(e_->preprocess(k.d4));
    return out;
  };
  PreparedKey prepared;
  prepared.dims.reserve(key.dims.size());
  for (const auto& dim : key.dims) {
    std::vector<PreparedNodeKey> nodes;
    nodes.reserve(dim.size());
    for (const auto& nk : dim) {
      nodes.push_back(
          {nk.node, prepare_aibe(nk.check), prepare_aibe(nk.share)});
    }
    prepared.dims.push_back(std::move(nodes));
  }
  return prepared;
}

bool Mrqed::match_prepared(const MrqedCiphertext& ct, const PreparedKey& key,
                           MatchStats* stats) const {
  if (ct.dims.size() != dims_ || key.dims.size() != dims_) {
    throw std::invalid_argument("Mrqed::match_prepared: arity mismatch");
  }
  auto decrypt_pre = [&](const AibeCiphertext& c,
                         const std::vector<PreprocessedPairing>& k) {
    // One shared-accumulator multi-pairing over the 5 AIBE components
    // (counts 5 miller probes, matching the per-probe stats below).
    const std::array<AffinePoint, 5> qs = {c.c0, c.c1, c.c2, c.c3, c.c4};
    return e_->gt_mul(c.cprime, e_->final_exp(e_->multi_miller_pre(k, qs)));
  };
  MatchStats local;
  const GtEl check = check_constant();
  GtEl product = e_->gt_one();
  for (std::size_t d = 0; d < dims_; ++d) {
    bool dim_matched = false;
    for (const auto& node_key : key.dims[d]) {
      const auto& node_ct = ct.dims[d].at(node_key.node.level);
      local.pairings += 5;
      if (decrypt_pre(node_ct.check, node_key.check) != check) continue;
      local.pairings += 5;
      product = e_->gt_mul(product,
                           decrypt_pre(node_ct.share, node_key.share));
      dim_matched = true;
      break;
    }
    if (!dim_matched) {
      if (stats != nullptr) *stats = local;
      return false;
    }
  }
  if (stats != nullptr) *stats = local;
  return product == flag_constant();
}

bool Mrqed::match(const MrqedCiphertext& ct, const MrqedKey& key,
                  MatchStats* stats) const {
  if (ct.dims.size() != dims_ || key.dims.size() != dims_) {
    throw std::invalid_argument("Mrqed::match: arity mismatch");
  }
  MatchStats local;
  const GtEl check = check_constant();
  GtEl product = e_->gt_one();
  for (std::size_t d = 0; d < dims_; ++d) {
    bool dim_matched = false;
    for (const auto& node_key : key.dims[d]) {
      const auto& node_ct = ct.dims[d].at(node_key.node.level);
      local.pairings += 5;
      if (aibe_.decrypt(node_ct.check, node_key.check) != check) continue;
      local.pairings += 5;
      product = e_->gt_mul(product,
                           aibe_.decrypt(node_ct.share, node_key.share));
      dim_matched = true;
      break;
    }
    if (!dim_matched) {
      if (stats != nullptr) *stats = local;
      return false;
    }
  }
  if (stats != nullptr) *stats = local;
  return product == flag_constant();
}

}  // namespace apks
