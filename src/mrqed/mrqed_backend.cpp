#include "mrqed/mrqed_backend.h"

#include "common/bytes.h"
#include "mrqed/serialize.h"

namespace apks {

std::vector<std::uint8_t> MrqedBackend::encode_index(
    const AnyIndex& index) const {
  require_index(index);
  return serialize_mrqed_ciphertext(pairing(), index.as<MrqedCiphertext>());
}

AnyIndex MrqedBackend::decode_index(std::span<const std::uint8_t> data) const {
  return AnyIndex::own(kind(), deserialize_mrqed_ciphertext(pairing(), data));
}

std::vector<std::uint8_t> MrqedBackend::encode_query(
    const AnyQuery& query) const {
  require_query(query);
  return serialize_mrqed_key(pairing(), query.as<MrqedKey>());
}

AnyQuery MrqedBackend::decode_query(std::span<const std::uint8_t> data) const {
  return AnyQuery::own(kind(), deserialize_mrqed_key(pairing(), data));
}

QueryDigest MrqedBackend::digest(const AnyQuery& query) const {
  require_query(query);
  // Same contract as the APKS capability digest: equal iff the wire-format
  // keys are byte-identical, so a reused range key hits the prepared cache.
  return Sha256::hash(std::span<const std::uint8_t>(
      serialize_mrqed_key(pairing(), query.as<MrqedKey>())));
}

AnyPrepared MrqedBackend::prepare(const AnyQuery& query) const {
  require_query(query);
  return AnyPrepared::own(kind(), scheme_->prepare(query.as<MrqedKey>()));
}

bool MrqedBackend::match(const AnyPrepared& prepared,
                         const AnyIndex& index) const {
  require_prepared(prepared);
  require_index(index);
  return scheme_->match_prepared(index.as<MrqedCiphertext>(),
                                 prepared.as<Mrqed::PreparedKey>());
}

std::vector<std::uint8_t> MrqedBackend::query_message(
    const AnyQuery& query, const std::string& issuer) const {
  require_query(query);
  // Same layout as the APKS capability_message: wire key bytes, then the
  // issuer name, so one verifier serves every scheme.
  ByteWriter w;
  w.bytes(serialize_mrqed_key(pairing(), query.as<MrqedKey>()));
  w.str(issuer);
  return w.take();
}

}  // namespace apks
