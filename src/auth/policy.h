// Authorization policies beyond attribute eligibility.
//
// Section VI-B: when the adversary knows keyword frequencies it can guess
// the query behind a capability; the paper's countermeasure is to require
// every authorized query to constrain at least a minimum number of
// dimensions (narrow capabilities match few records, so the result set
// leaks less and frequency analysis gets harder). QueryPolicy bundles that
// rule with structural limits an authority may want to impose.
#pragma once

#include <cstddef>

#include "core/schema.h"

namespace apks {

struct QueryPolicy {
  // Minimum number of non-don't-care dimensions in the *cumulative* query
  // (authority scope AND user request). 0 disables the check.
  std::size_t min_active_dims = 0;
  // Maximum delegation depth an issued capability may have (0 = unlimited).
  // Deeper chains mean larger capabilities; authorities can bound them.
  std::size_t max_delegation_depth = 0;

  [[nodiscard]] static std::size_t active_dims(const Query& query) {
    std::size_t active = 0;
    for (const auto& term : query.terms) {
      if (term.kind != QueryTerm::Kind::kAny) ++active;
    }
    return active;
  }

  // Active dimensions across a conjunction of queries (a dimension counts
  // once even if several levels restrict it).
  [[nodiscard]] static std::size_t active_dims(
      const std::vector<Query>& conjunction) {
    if (conjunction.empty()) return 0;
    std::vector<bool> active(conjunction.front().terms.size(), false);
    for (const auto& q : conjunction) {
      for (std::size_t i = 0; i < q.terms.size() && i < active.size(); ++i) {
        if (q.terms[i].kind != QueryTerm::Kind::kAny) active[i] = true;
      }
    }
    std::size_t count = 0;
    for (const bool a : active) count += a ? 1 : 0;
    return count;
  }

  [[nodiscard]] bool admits(const std::vector<Query>& conjunction) const {
    if (min_active_dims != 0 && active_dims(conjunction) < min_active_dims) {
      return false;
    }
    if (max_delegation_depth != 0 &&
        conjunction.size() > max_delegation_depth) {
      return false;
    }
    return true;
  }
};

}  // namespace apks
