// Identity-based signatures for capability authentication (paper Sec. III:
// "a TA/LTA can issue an identity-based signature on each capability it
// generated/delegated; the server verifies it before searching").
//
// The paper cites Paterson-Schuldt; we implement the Cha-Cheon IBS — a
// pairing-based EUF-CMA scheme in the random-oracle model with the same
// interface and much smaller public parameters (see DESIGN.md
// "Substitutions"). Verification costs two pairings.
#pragma once

#include <string_view>
#include <vector>

#include "pairing/pairing.h"

namespace apks {

struct IbsPublicParams {
  AffinePoint p_pub;  // s * g
};

struct IbsSigningKey {
  std::string identity;
  AffinePoint d;  // s * H1(identity)
};

struct IbsSignature {
  AffinePoint u;  // r * H1(id)
  AffinePoint v;  // (r + h) * d
};

class Ibs {
 public:
  explicit Ibs(const Pairing& pairing) : e_(&pairing) {}

  // Master key generation: returns (params, msk).
  struct SetupResult {
    IbsPublicParams params;
    Fq msk{};
  };
  [[nodiscard]] SetupResult setup(Rng& rng) const;

  // Extracts the signing key for an identity.
  [[nodiscard]] IbsSigningKey extract(const Fq& msk,
                                      std::string_view identity) const;

  [[nodiscard]] IbsSignature sign(const IbsSigningKey& key,
                                  std::span<const std::uint8_t> message,
                                  Rng& rng) const;

  [[nodiscard]] bool verify(const IbsPublicParams& params,
                            std::string_view identity,
                            std::span<const std::uint8_t> message,
                            const IbsSignature& sig) const;

 private:
  // h = H2(message, U) in F_q.
  [[nodiscard]] Fq challenge(std::span<const std::uint8_t> message,
                             const AffinePoint& u) const;

  const Pairing* e_;
};

}  // namespace apks
