// The fine-grained search-authorization framework of Section III.
//
// A root trusted authority (TA) runs APKS Setup and IBS setup, then issues
// basic capabilities to second-level local trusted authorities (LTAs) and
// can go offline. Each LTA governs a local domain of users (and possibly
// sub-LTAs): it keeps an attribute database, checks that a requested query
// only touches attribute values the user possesses or is eligible for, and
// answers with a *delegated* capability — always at least as restrictive as
// the LTA's own. Every issued capability carries an identity-based
// signature; the cloud server verifies it against the registered authority
// list before serving a search.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "auth/ibs.h"
#include "auth/policy.h"
#include "core/apks.h"
#include "core/backend.h"
#include "hpe/serialize.h"

namespace apks {

// A capability as transmitted to the cloud server.
struct SignedCapability {
  Capability cap;
  std::string issuer;  // authority identity the server checks registration of
  IbsSignature sig;    // over serialize_key(cap.key) || issuer
};

// The scheme-agnostic counterpart: any backend's query (APKS capability,
// MRQED range key, ...) plus the issuing authority's signature over that
// backend's query_message. For the APKS family query_message is
// byte-identical to capability_message, so a SignedCapability re-wrapped as
// a SignedQuery verifies against the same signature bytes.
struct SignedQuery {
  AnyQuery query;
  std::string issuer;
  IbsSignature sig;  // over backend.query_message(query, issuer)
};

// Attribute values a user possesses, per original schema dimension name.
// A user may hold several values in one dimension (e.g. two illnesses).
struct UserAttributes {
  std::map<std::string, std::vector<std::string>> values;
};

class LocalAuthority;

class TrustedAuthority {
 public:
  // Runs APKS Setup and IBS setup. The scheme object must outlive the TA.
  TrustedAuthority(const Apks& scheme, Rng& rng);

  // For APKS+ deployments: adopt an externally produced (blinded) master
  // key instead of running plain Setup.
  TrustedAuthority(const Apks& scheme, ApksPublicKey pk, ApksMasterKey msk,
                   Rng& rng);

  [[nodiscard]] const ApksPublicKey& public_key() const noexcept {
    return pk_;
  }
  [[nodiscard]] const IbsPublicParams& ibs_params() const noexcept {
    return ibs_params_;
  }

  // Creates a second-level LTA whose every capability is confined to
  // `basic_scope` (the paper's example: provider = "hospital A").
  [[nodiscard]] std::unique_ptr<LocalAuthority> make_lta(
      const std::string& name, const Query& basic_scope, Rng& rng);

  // Direct issuance by the TA itself (used rarely; the TA is semi-offline).
  [[nodiscard]] SignedCapability issue(const Query& query, Rng& rng);

  // Scheme-agnostic issuance: signs `backend.query_message(query, "TA")`
  // with the TA's IBS key. Used for non-APKS backends (MRQED^D range keys)
  // where gen_cap/delegate do not apply; the APKS family keeps the richer
  // typed path above.
  [[nodiscard]] SignedQuery issue_query(const SearchBackend& backend,
                                        AnyQuery query, Rng& rng) const;

  [[nodiscard]] const Apks& scheme() const noexcept { return *scheme_; }

 private:
  friend class LocalAuthority;
  [[nodiscard]] SignedCapability sign_capability(Capability cap,
                                                 const IbsSigningKey& key,
                                                 Rng& rng) const;

  const Apks* scheme_;
  ApksPublicKey pk_;
  ApksMasterKey msk_;
  Ibs ibs_;
  Fq ibs_msk_{};
  IbsPublicParams ibs_params_;
  IbsSigningKey ta_sig_key_;
};

class LocalAuthority {
 public:
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  // The query scope this authority's capabilities are confined to.
  [[nodiscard]] const std::vector<Query>& scope() const noexcept {
    return root_.history;
  }

  void register_user(const std::string& user_id, UserAttributes attrs);

  // Installs the statistical-attack countermeasure of Section VI-B (and
  // optional delegation-depth bound); enforced on every delegation.
  void set_policy(QueryPolicy policy) { policy_ = policy; }
  [[nodiscard]] const QueryPolicy& policy() const noexcept { return policy_; }

  // Section III eligibility: every non-don't-care term of `query` must be
  // satisfied by at least one attribute value the user holds in that
  // dimension.
  [[nodiscard]] bool eligible(const std::string& user_id,
                              const Query& query) const;

  // Checks eligibility, then returns a capability for (scope AND query),
  // signed by this authority. Returns std::nullopt if the user is not
  // registered or not eligible.
  [[nodiscard]] std::optional<SignedCapability> delegate_for_user(
      const std::string& user_id, const Query& query, Rng& rng) const;

  // Creates a sub-LTA whose scope is this LTA's scope AND `restriction`
  // (the paper's multi-level authority tree).
  [[nodiscard]] std::unique_ptr<LocalAuthority> make_sub_lta(
      const std::string& name, const Query& restriction, Rng& rng) const;

 private:
  friend class TrustedAuthority;
  LocalAuthority(const TrustedAuthority& ta, std::string name,
                 Capability root, IbsSigningKey sig_key)
      : ta_(&ta),
        name_(std::move(name)),
        root_(std::move(root)),
        sig_key_(std::move(sig_key)) {}

  const TrustedAuthority* ta_;
  std::string name_;
  Capability root_;  // this authority's own (restricted) capability
  IbsSigningKey sig_key_;
  std::map<std::string, UserAttributes> users_;
  QueryPolicy policy_;
};

// Server-side admission check: verifies the capability signature against a
// registered-authority list.
class CapabilityVerifier {
 public:
  CapabilityVerifier(const Pairing& pairing, IbsPublicParams params)
      : ibs_(pairing), params_(std::move(params)), pairing_(&pairing) {}

  void register_authority(const std::string& name) {
    registered_.insert(name);
  }

  [[nodiscard]] bool verify(const SignedCapability& cap) const;

  // Scheme-agnostic admission check: the signature must cover
  // backend.query_message(q.query, q.issuer). For APKS-family backends this
  // accepts exactly the signatures `verify(SignedCapability)` accepts.
  [[nodiscard]] bool verify(const SearchBackend& backend,
                            const SignedQuery& q) const;

  // Shared core of both verify overloads: registered-issuer check plus IBS
  // verification over an already-built message.
  [[nodiscard]] bool verify_message(std::span<const std::uint8_t> message,
                                    const std::string& issuer,
                                    const IbsSignature& sig) const;

 private:
  Ibs ibs_;
  IbsPublicParams params_;
  const Pairing* pairing_;
  std::set<std::string> registered_;
};

// The byte string the IBS covers: the HPE key plus the issuer name.
[[nodiscard]] std::vector<std::uint8_t> capability_message(
    const Pairing& pairing, const Capability& cap, const std::string& issuer);

// Wire format for capabilities in transit to the cloud server (key +
// issuer + signature; the query history stays with the issuing authority).
[[nodiscard]] std::vector<std::uint8_t> serialize_signed_capability(
    const Pairing& pairing, const SignedCapability& cap);
[[nodiscard]] SignedCapability deserialize_signed_capability(
    const Pairing& pairing, std::span<const std::uint8_t> data);

}  // namespace apks
