#include "auth/authority.h"

#include "core/serialize_apks.h"

namespace apks {

std::vector<std::uint8_t> capability_message(const Pairing& pairing,
                                             const Capability& cap,
                                             const std::string& issuer) {
  ByteWriter w;
  w.bytes(serialize_key(pairing, cap.key));
  w.str(issuer);
  return w.take();
}

std::vector<std::uint8_t> serialize_signed_capability(
    const Pairing& pairing, const SignedCapability& cap) {
  ByteWriter w;
  // Layered on the APKS capability codec so the delegation history (the
  // LTAs' audit trail) survives the wire; the signature still covers
  // capability_message (key + issuer) only, as issued.
  w.bytes(serialize_capability(pairing, cap.cap));
  w.str(cap.issuer);
  write_point(pairing.curve(), cap.sig.u, w);
  write_point(pairing.curve(), cap.sig.v, w);
  return w.take();
}

SignedCapability deserialize_signed_capability(
    const Pairing& pairing, std::span<const std::uint8_t> data) {
  ByteReader r(data);
  SignedCapability cap;
  cap.cap = deserialize_capability(pairing, r.bytes());
  cap.issuer = r.str();
  cap.sig.u = read_point(pairing.curve(), r);
  cap.sig.v = read_point(pairing.curve(), r);
  if (!r.done()) {
    throw std::invalid_argument("signed capability: trailing bytes");
  }
  return cap;
}

TrustedAuthority::TrustedAuthority(const Apks& scheme, Rng& rng)
    : scheme_(&scheme), ibs_(scheme.hpe().pairing()) {
  scheme_->setup(rng, pk_, msk_);
  auto s = ibs_.setup(rng);
  ibs_msk_ = s.msk;
  ibs_params_ = s.params;
  ta_sig_key_ = ibs_.extract(ibs_msk_, "TA");
}

TrustedAuthority::TrustedAuthority(const Apks& scheme, ApksPublicKey pk,
                                   ApksMasterKey msk, Rng& rng)
    : scheme_(&scheme),
      pk_(std::move(pk)),
      msk_(std::move(msk)),
      ibs_(scheme.hpe().pairing()) {
  auto s = ibs_.setup(rng);
  ibs_msk_ = s.msk;
  ibs_params_ = s.params;
  ta_sig_key_ = ibs_.extract(ibs_msk_, "TA");
}

SignedCapability TrustedAuthority::sign_capability(Capability cap,
                                                   const IbsSigningKey& key,
                                                   Rng& rng) const {
  SignedCapability out;
  out.issuer = key.identity;
  const auto msg =
      capability_message(scheme_->hpe().pairing(), cap, out.issuer);
  out.sig = ibs_.sign(key, msg, rng);
  out.cap = std::move(cap);
  return out;
}

SignedCapability TrustedAuthority::issue(const Query& query, Rng& rng) {
  return sign_capability(scheme_->gen_cap(msk_, query, rng), ta_sig_key_, rng);
}

SignedQuery TrustedAuthority::issue_query(const SearchBackend& backend,
                                          AnyQuery query, Rng& rng) const {
  SignedQuery out;
  out.issuer = ta_sig_key_.identity;
  const auto msg = backend.query_message(query, out.issuer);
  out.sig = ibs_.sign(ta_sig_key_, msg, rng);
  out.query = std::move(query);
  return out;
}

std::unique_ptr<LocalAuthority> TrustedAuthority::make_lta(
    const std::string& name, const Query& basic_scope, Rng& rng) {
  Capability root = scheme_->gen_cap(msk_, basic_scope, rng);
  IbsSigningKey key = ibs_.extract(ibs_msk_, name);
  return std::unique_ptr<LocalAuthority>(
      new LocalAuthority(*this, name, std::move(root), std::move(key)));
}

void LocalAuthority::register_user(const std::string& user_id,
                                   UserAttributes attrs) {
  users_[user_id] = std::move(attrs);
}

bool LocalAuthority::eligible(const std::string& user_id,
                              const Query& query) const {
  const auto it = users_.find(user_id);
  if (it == users_.end()) return false;
  const Schema& schema = ta_->scheme().schema();
  if (query.terms.size() != schema.original_dims()) return false;
  for (std::size_t dim = 0; dim < query.terms.size(); ++dim) {
    const QueryTerm& term = query.terms[dim];
    if (term.kind == QueryTerm::Kind::kAny) continue;
    const auto attr = it->second.values.find(schema.dim(dim).name);
    if (attr == it->second.values.end()) return false;
    bool ok = false;
    for (const auto& value : attr->second) {
      if (schema.term_matches(dim, value, term)) {
        ok = true;
        break;
      }
    }
    if (!ok) return false;
  }
  return true;
}

std::optional<SignedCapability> LocalAuthority::delegate_for_user(
    const std::string& user_id, const Query& query, Rng& rng) const {
  if (!eligible(user_id, query)) return std::nullopt;
  // Policy check over the cumulative conjunction the capability will hold.
  std::vector<Query> conjunction = root_.history;
  conjunction.push_back(query);
  if (!policy_.admits(conjunction)) return std::nullopt;
  Capability delegated = ta_->scheme().delegate_cap(root_, query, rng);
  return ta_->sign_capability(std::move(delegated), sig_key_, rng);
}

std::unique_ptr<LocalAuthority> LocalAuthority::make_sub_lta(
    const std::string& name, const Query& restriction, Rng& rng) const {
  Capability sub_root = ta_->scheme().delegate_cap(root_, restriction, rng);
  IbsSigningKey key = ta_->ibs_.extract(ta_->ibs_msk_, name);
  return std::unique_ptr<LocalAuthority>(
      new LocalAuthority(*ta_, name, std::move(sub_root), std::move(key)));
}

bool CapabilityVerifier::verify(const SignedCapability& cap) const {
  const auto msg = capability_message(*pairing_, cap.cap, cap.issuer);
  return verify_message(msg, cap.issuer, cap.sig);
}

bool CapabilityVerifier::verify(const SearchBackend& backend,
                                const SignedQuery& q) const {
  return verify_message(backend.query_message(q.query, q.issuer), q.issuer,
                        q.sig);
}

bool CapabilityVerifier::verify_message(std::span<const std::uint8_t> message,
                                        const std::string& issuer,
                                        const IbsSignature& sig) const {
  if (registered_.find(issuer) == registered_.end()) return false;
  return ibs_.verify(params_, issuer, message, sig);
}

}  // namespace apks
