#include "auth/ibs.h"

#include "common/sha256.h"

namespace apks {

Ibs::SetupResult Ibs::setup(Rng& rng) const {
  SetupResult out;
  out.msk = e_->fq().random_nonzero(rng);
  out.params.p_pub = e_->curve().mul_base_fq(out.msk);
  return out;
}

IbsSigningKey Ibs::extract(const Fq& msk, std::string_view identity) const {
  IbsSigningKey key;
  key.identity = std::string(identity);
  key.d = e_->curve().mul_fq(
      e_->curve().hash_to_point(std::string("ibs:id:") + key.identity), msk);
  return key;
}

Fq Ibs::challenge(std::span<const std::uint8_t> message,
                  const AffinePoint& u) const {
  Sha256 h;
  h.update("ibs:challenge");
  std::array<std::uint8_t, Curve::kCompressedSize> ubuf{};
  e_->curve().serialize(u, ubuf);
  h.update(std::span<const std::uint8_t>(ubuf.data(), ubuf.size()));
  h.update(message);
  const auto digest = h.finish();
  return e_->fq().from_bytes_mod(digest);
}

IbsSignature Ibs::sign(const IbsSigningKey& key,
                       std::span<const std::uint8_t> message,
                       Rng& rng) const {
  const Curve& curve = e_->curve();
  const FqField& fq = e_->fq();
  const AffinePoint qid =
      curve.hash_to_point(std::string("ibs:id:") + key.identity);
  const Fq r = fq.random_nonzero(rng);
  IbsSignature sig;
  sig.u = curve.mul_fq(qid, r);
  const Fq h = challenge(message, sig.u);
  sig.v = curve.mul_fq(key.d, fq.add(r, h));
  return sig;
}

bool Ibs::verify(const IbsPublicParams& params, std::string_view identity,
                 std::span<const std::uint8_t> message,
                 const IbsSignature& sig) const {
  const Curve& curve = e_->curve();
  if (sig.u.inf || sig.v.inf) return false;
  if (!curve.on_curve(sig.u) || !curve.on_curve(sig.v)) return false;
  const AffinePoint qid =
      curve.hash_to_point(std::string("ibs:id:") + std::string(identity));
  const Fq h = challenge(message, sig.u);
  // e(V, g) == e(U + h*Qid, Ppub).
  const GtEl lhs = e_->pair(sig.v, curve.generator());
  const GtEl rhs = e_->pair(curve.add(sig.u, curve.mul_fq(qid, h)),
                            params.p_pub);
  return lhs == rhs;
}

}  // namespace apks
