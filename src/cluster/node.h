// ClusterNode — one serving process of the scale-out tier (DESIGN.md §5i,
// self-healing extensions §5j).
//
// A node takes a ClusterMap plus its own index in it, loads the shards
// the map assigns to it from a ShardedStore (the store's on-disk
// partitioning — id % S — must match the map's shard count, so a store
// shard IS a cluster shard), and serves them over the PR-8 network layer:
// one CloudServer + SearchEngine per owned shard, wired into NetServer
// through a ShardEngineSet. v2 coordinators issue shard-scoped
// kShardSearch RPCs; legacy v1 clients still get a plain kSearch answer
// covering the node's subset of the store, merged by record id locally.
//
// Live reconfiguration: a v3 kMapUpdate (or a direct apply_map call)
// carrying a strictly newer map swaps the node's serving set in place —
// no restart. Still-owned shards keep their loaded engines (shared
// ownership moves to the new set), newly-assigned shards are loaded from
// the shared store, and de-assigned engines are unloaded as soon as the
// last in-flight RPC that snapshotted them finishes: dispatched scans
// always complete against the placement they were admitted under (the
// graceful handoff), while the next request sees the new map. A map that
// is NOT strictly newer is refused — version ties and regressions must
// surface at the coordinator, never silently reorder placement.
//
// Each shard's engine scans only that shard's records in ascending-id
// order, so per-shard scanned/matched counts sum across the cluster to
// exactly the single-node figures and the coordinator's merge-by-id
// reproduces the single-node result bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/search_engine.h"
#include "cluster/placement.h"
#include "net/server.h"

namespace apks::cluster {

struct ClusterNodeOptions {
  // Per-shard engine options (threads apply per shard scan).
  SearchEngine::Options engine;
  // Network front end. host/port here are the BIND address (port 0 =
  // ephemeral, read back via port()); the map's host/port entries are
  // what coordinators dial, so tests can bind ephemerally and publish
  // the bound ports in the map afterwards.
  net::NetServerOptions net;
};

class ClusterNode {
 public:
  // Loads `store`'s records for every shard the map assigns to
  // `node_index` and starts serving. Throws std::invalid_argument when
  // the store's shard count differs from the map's (the partition would
  // be mis-scoped) or node_index is out of range. The backend, verifier
  // target, and store must outlive the node.
  ClusterNode(const SearchBackend& backend, CapabilityVerifier verifier,
              ShardedStore& store, const ClusterMap& map,
              std::uint32_t node_index, ClusterNodeOptions options = {});
  ~ClusterNode();

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  // Applies a strictly newer map (the kMapUpdate handler routes here; the
  // CLI/test harness may call it directly). Identifies this node by NAME
  // in the new map — its index may have moved. Loads newly-assigned
  // shards from the store, retains still-owned engines, swaps the serving
  // set; in-flight RPCs finish against the old engines. Throws
  // std::invalid_argument when the map is not strictly newer, its shard
  // count differs from the store's, or this node's name is absent.
  void apply_map(const ClusterMap& new_map);

  [[nodiscard]] std::uint16_t port() const noexcept { return net_->port(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t map_version() const;
  [[nodiscard]] std::vector<std::uint32_t> owned_shards() const;
  // Records loaded across all owned shards.
  [[nodiscard]] std::uint64_t record_count() const;
  [[nodiscard]] net::NetServer& server() noexcept { return *net_; }
  [[nodiscard]] const net::NetServer& server() const noexcept { return *net_; }

  void stop(std::uint64_t grace_ms = 0) { net_->stop(grace_ms); }

 private:
  // One placement epoch's serving state: the per-shard record sets +
  // engines and the ShardEngineSet pointing at them. Engine ownership is
  // shared_ptr because consecutive epochs share still-owned shards — a
  // shard's engine dies only when no epoch (and no in-flight job
  // snapshot) references it any more.
  struct ShardState {
    std::vector<std::uint32_t> owned;
    std::vector<std::shared_ptr<CloudServer>> servers;
    std::vector<std::shared_ptr<SearchEngine>> engines;
    net::ShardEngineSet set;
  };

  // Builds the epoch state for `map`, reusing engines from `prev` (may be
  // null) for shards owned in both epochs and loading the rest from the
  // store.
  [[nodiscard]] std::shared_ptr<ShardState> build_state(
      const ClusterMap& map, std::uint32_t node_index,
      const ShardState* prev);
  [[nodiscard]] net::MapUpdateAckMsg handle_map_update(
      const std::vector<std::uint8_t>& bytes);

  const SearchBackend* backend_;
  CapabilityVerifier verifier_;
  ShardedStore* store_;
  std::string name_;
  SearchEngine::Options engine_options_;

  std::mutex apply_mu_;      // serializes apply_map calls
  mutable std::mutex mu_;    // guards map_ and state_
  ClusterMap map_;
  std::shared_ptr<ShardState> state_;

  // The NetServer's session backend/verifier anchor: a record-free engine
  // that is never part of any swap, so the server's engine reference
  // stays valid across every reconfiguration.
  std::unique_ptr<CloudServer> anchor_server_;
  std::unique_ptr<SearchEngine> anchor_engine_;
  std::unique_ptr<net::NetServer> net_;
};

}  // namespace apks::cluster
