// ClusterNode — one serving process of the scale-out tier (DESIGN.md §5i).
//
// A node takes a ClusterMap plus its own index in it, loads the shards
// the map assigns to it from a ShardedStore (the store's on-disk
// partitioning — id % S — must match the map's shard count, so a store
// shard IS a cluster shard), and serves them over the PR-8 network layer:
// one CloudServer + SearchEngine per owned shard, wired into NetServer
// through a ShardEngineSet. v2 coordinators issue shard-scoped
// kShardSearch RPCs; legacy v1 clients still get a plain kSearch answer
// covering the node's subset of the store, merged by record id locally.
//
// Each shard's engine scans only that shard's records in ascending-id
// order, so per-shard scanned/matched counts sum across the cluster to
// exactly the single-node figures and the coordinator's merge-by-id
// reproduces the single-node result bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/search_engine.h"
#include "cluster/placement.h"
#include "net/server.h"

namespace apks::cluster {

struct ClusterNodeOptions {
  // Per-shard engine options (threads apply per shard scan).
  SearchEngine::Options engine;
  // Network front end. host/port here are the BIND address (port 0 =
  // ephemeral, read back via port()); the map's host/port entries are
  // what coordinators dial, so tests can bind ephemerally and publish
  // the bound ports in the map afterwards.
  net::NetServerOptions net;
};

class ClusterNode {
 public:
  // Loads `store`'s records for every shard the map assigns to
  // `node_index` and starts serving. Throws std::invalid_argument when
  // the store's shard count differs from the map's (the partition would
  // be mis-scoped) or node_index is out of range. The backend, verifier
  // target, and store must outlive the node.
  ClusterNode(const SearchBackend& backend, CapabilityVerifier verifier,
              ShardedStore& store, const ClusterMap& map,
              std::uint32_t node_index, ClusterNodeOptions options = {});

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return net_->port(); }
  [[nodiscard]] const std::vector<std::uint32_t>& owned_shards()
      const noexcept {
    return owned_;
  }
  // Records loaded across all owned shards.
  [[nodiscard]] std::uint64_t record_count() const;
  [[nodiscard]] net::NetServer& server() noexcept { return *net_; }
  [[nodiscard]] const net::NetServer& server() const noexcept { return *net_; }

  void stop(std::uint64_t grace_ms = 0) { net_->stop(grace_ms); }

 private:
  std::vector<std::uint32_t> owned_;
  // One record set + engine per owned shard (index-aligned with owned_),
  // plus a fallback empty pair when the map assigns this node nothing —
  // NetServer still needs a session backend/verifier.
  std::vector<std::unique_ptr<CloudServer>> servers_;
  std::vector<std::unique_ptr<SearchEngine>> engines_;
  net::ShardEngineSet set_;
  std::unique_ptr<net::NetServer> net_;
};

}  // namespace apks::cluster
