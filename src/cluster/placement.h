// ClusterMap — explicit, versioned shard placement for the scale-out
// serving tier (DESIGN.md §5i).
//
// A single-process deployment routes records implicitly: ShardedStore puts
// id i into shard i % S and a scan touches every shard locally. The
// cluster generalizes that into an explicit map every party can hold a
// copy of: S shards placed on N named nodes by rendezvous (highest-
// random-weight) hashing, each shard owned by the R best-scoring nodes —
// its replica set, best score first (the primary). HRW gives the two
// properties the tier needs with no coordination state:
//
//   * determinism — placement is a pure function of (node names, S, R),
//     so a coordinator and every node derive byte-identical ownership
//     from the same member list; nothing is negotiated at runtime, and
//   * minimal movement — adding/removing a node only reassigns the
//     shards whose top-R set actually changed.
//
// The map carries a version; every shard-scoped RPC quotes (version,
// total_shards) and a node refuses mismatches (`stale cluster map`), so a
// coordinator holding yesterday's map gets a typed error, never a
// silently mis-scoped answer. serialize()/deserialize() round-trip the
// map byte-for-byte (magic + CRC framing, same hostile-input posture as
// the wire codecs); the placement itself is never serialized — receivers
// rebuild it, which is what guarantees agreement.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.h"

namespace apks::cluster {

struct NodeInfo {
  std::string name;  // stable identity — the only input to placement
  std::string host;  // where the node's NetServer listens
  std::uint16_t port = 0;

  friend bool operator==(const NodeInfo&, const NodeInfo&) = default;
};

// The HRW score of (node, shard): FNV-1a over the node name, mixed with
// the shard through a splitmix64 finalizer. Exposed for tests asserting
// placement determinism.
[[nodiscard]] std::uint64_t placement_score(std::string_view node_name,
                                            std::uint32_t shard);

class ClusterMap {
 public:
  ClusterMap() = default;

  // Builds the placement deterministically from (nodes, total_shards,
  // replicas, version). Throws std::invalid_argument on an empty node
  // list, zero shards/replicas, or duplicate node names. replicas is
  // clamped to the node count (a 2-node map can hold R=3 nominally but
  // each shard gets 2 owners).
  ClusterMap(std::vector<NodeInfo> nodes, std::uint32_t total_shards,
             std::uint32_t replicas, std::uint64_t version = 1);

  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] std::uint32_t total_shards() const noexcept {
    return total_shards_;
  }
  [[nodiscard]] std::uint32_t replicas() const noexcept { return replicas_; }
  [[nodiscard]] const std::vector<NodeInfo>& nodes() const noexcept {
    return nodes_;
  }

  // The shard's replica set as node indexes, best HRW score first — the
  // first entry is the primary, the rest the failover order. Throws
  // std::out_of_range for a shard beyond total_shards.
  [[nodiscard]] const std::vector<std::uint32_t>& replicas_of(
      std::uint32_t shard) const;
  [[nodiscard]] std::uint32_t primary_of(std::uint32_t shard) const {
    return replicas_of(shard)[0];
  }

  // Every shard whose replica set includes `node`, ascending — what a
  // ClusterNode loads and serves.
  [[nodiscard]] std::vector<std::uint32_t> shards_of(
      std::uint32_t node) const;

  // Byte-exact round trip (magic "APKSMAP1", CRC32 trailer). deserialize
  // throws ServingError(kCorrupt) on framing damage and
  // std::invalid_argument on structurally invalid contents.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  [[nodiscard]] static ClusterMap deserialize(
      std::span<const std::uint8_t> data);

  friend bool operator==(const ClusterMap& a, const ClusterMap& b) {
    return a.version_ == b.version_ && a.total_shards_ == b.total_shards_ &&
           a.replicas_ == b.replicas_ && a.nodes_ == b.nodes_;
  }

 private:
  void build_placement();

  std::uint64_t version_ = 0;
  std::uint32_t total_shards_ = 0;
  std::uint32_t replicas_ = 0;
  std::vector<NodeInfo> nodes_;
  // shard -> replica node indexes (derived, never serialized).
  std::vector<std::vector<std::uint32_t>> placement_;
};

// Merge per-shard hit streams back into one ascending-id ref list — the
// same concatenate-then-sort ShardedStore::search_any performs locally,
// so a coordinator gluing node responses together reproduces the
// single-node byte order exactly (record ids are unique across shards).
// Consumes the hits (refs are moved out).
[[nodiscard]] std::vector<std::string> merge_by_id(
    std::vector<std::vector<net::ShardHit>> parts);

}  // namespace apks::cluster
