#include "cluster/health.h"

#include <chrono>
#include <utility>

namespace apks::cluster {

std::string_view liveness_name(NodeLiveness liveness) noexcept {
  switch (liveness) {
    case NodeLiveness::kAlive: return "alive";
    case NodeLiveness::kSuspect: return "suspect";
    case NodeLiveness::kDead: return "dead";
  }
  return "?";
}

HealthMonitor::HealthMonitor(SchemeKind scheme, const ClusterMap& map,
                             HealthMonitorOptions options,
                             TransitionHook on_transition)
    : scheme_(scheme), options_(options), hook_(std::move(on_transition)) {
  peers_.reserve(map.nodes().size());
  for (const NodeInfo& info : map.nodes()) {
    Peer peer;
    peer.info = info;
    peer.detector = FailureDetector(options_.detector);
    peers_.push_back(std::move(peer));
  }
  if (options_.interval_ms != 0) {
    thread_ = std::thread([this] { thread_main(); });
  }
}

HealthMonitor::~HealthMonitor() { stop(); }

void HealthMonitor::stop() {
  {
    std::lock_guard lk(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  clients_.clear();
}

void HealthMonitor::thread_main() {
  for (;;) {
    {
      std::unique_lock lk(stop_mu_);
      stop_cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                        [&] { return stopping_; });
      if (stopping_) return;
    }
    tick();
  }
}

void HealthMonitor::tick() {
  // Snapshot the member list, then do the (slow, possibly timing-out)
  // network round without holding mu_ — liveness() readers never wait on
  // a blackholed peer.
  std::vector<NodeInfo> members;
  {
    std::lock_guard lk(mu_);
    members.reserve(peers_.size());
    for (const Peer& peer : peers_) members.push_back(peer.info);
  }

  struct Probe {
    bool pong = false;
    net::PongMsg msg;
  };
  std::vector<Probe> probes(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    const NodeInfo& info = members[i];
    // Find (or create) this node's dedicated heartbeat client.
    std::unique_ptr<net::NetClient>* slot = nullptr;
    for (auto& [name, client] : clients_) {
      if (name == info.name) {
        slot = &client;
        break;
      }
    }
    if (slot == nullptr) {
      clients_.emplace_back(info.name, nullptr);
      slot = &clients_.back().second;
    }
    try {
      if (*slot == nullptr || !(*slot)->connected()) {
        auto client = std::make_unique<net::NetClient>();
        client->connect(info.host, info.port, options_.ping_timeout_ms);
        const net::HelloAckMsg hello = client->hello(scheme_);
        if (hello.status != net::WireStatus::kOk ||
            hello.version < 3) {
          throw ServingError(ErrorCode::kUnavailable,
                             "hello refused or pre-v3 peer");
        }
        *slot = std::move(client);
      }
      probes[i].msg = (*slot)->ping();
      probes[i].pong = true;
    } catch (const std::exception&) {
      slot->reset();  // redial next round: the stream state is unknown
    }
  }
  // Forget connections of nodes a set_map removed.
  std::erase_if(clients_, [&](const auto& entry) {
    for (const NodeInfo& info : members) {
      if (info.name == entry.first) return false;
    }
    return true;
  });

  // Apply the round to the detectors; nodes are re-matched by name in
  // case a set_map raced the network round.
  struct Transition {
    std::string name;
    NodeLiveness from;
    NodeLiveness to;
  };
  std::vector<Transition> transitions;
  {
    std::lock_guard lk(mu_);
    ++rounds_;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (Peer& peer : peers_) {
        if (peer.info.name != members[i].name) continue;
        const NodeLiveness before = peer.detector.liveness();
        NodeLiveness after;
        if (probes[i].pong) {
          after = peer.detector.on_pong();
          ++peer.pongs;
          peer.map_version = probes[i].msg.map_version;
          peer.inflight = probes[i].msg.inflight;
        } else {
          after = peer.detector.on_miss();
        }
        if (after != before) {
          transitions.push_back(Transition{peer.info.name, before, after});
        }
        break;
      }
    }
  }
  if (hook_) {
    for (const Transition& t : transitions) hook_(t.name, t.from, t.to);
  }
}

void HealthMonitor::set_map(const ClusterMap& map) {
  std::lock_guard lk(mu_);
  std::vector<Peer> next;
  next.reserve(map.nodes().size());
  for (const NodeInfo& info : map.nodes()) {
    Peer peer;
    peer.info = info;
    peer.detector = FailureDetector(options_.detector);
    for (Peer& old : peers_) {
      if (old.info.name == info.name) {
        // Same identity: keep its history even if host/port moved.
        peer.detector = old.detector;
        peer.pongs = old.pongs;
        peer.map_version = old.map_version;
        peer.inflight = old.inflight;
        break;
      }
    }
    next.push_back(std::move(peer));
  }
  peers_ = std::move(next);
}

NodeLiveness HealthMonitor::liveness(std::uint32_t node) const {
  std::lock_guard lk(mu_);
  if (node >= peers_.size()) return NodeLiveness::kAlive;
  return peers_[node].detector.liveness();
}

std::vector<NodeHealthSnapshot> HealthMonitor::snapshot() const {
  std::lock_guard lk(mu_);
  std::vector<NodeHealthSnapshot> out;
  out.reserve(peers_.size());
  for (const Peer& peer : peers_) {
    out.push_back(NodeHealthSnapshot{
        peer.info.name,
        peer.detector.liveness(),
        peer.detector.misses(),
        peer.pongs,
        peer.map_version,
        peer.inflight,
    });
  }
  return out;
}

std::uint64_t HealthMonitor::rounds() const noexcept {
  std::lock_guard lk(mu_);
  return rounds_;
}

}  // namespace apks::cluster
