// Coordinator — the scatter-gather edge of the cluster tier (DESIGN.md
// §5i; self-healing behaviour §5j).
//
// One coordinator holds a ClusterMap and a persistent NetClient per node.
// A search authenticates ONCE at the edge (the authority-signature check
// of the paper's protocol, memoized in a bounded digest-keyed LRU), then
// fans out shard-scoped kShardSearch RPCs to the owning nodes — the
// internal hop re-sends the query unchecked, which only nodes opted into
// allow_unchecked accept (the trusted-tier deployment). Per-shard hits
// come back with their record ids and are merged ascending by id:
// byte-identical to ShardedStore::search_any over the same records,
// because both sides run the identical concatenate-then-sort merge and
// ids are unique.
//
// Failure handling is the proxy pool's pattern lifted to nodes, made
// PROACTIVE by the health subsystem:
//
//   * every node has a CircuitBreaker (common/breaker.h) ticked on one
//     op counter per cluster search — a node that keeps failing is
//     skipped for cooldown_ops searches, then probed;
//   * with heartbeats enabled, each shard's replica order is re-sorted
//     by liveness rank (alive < suspect < dead) at search start and a
//     dead node's breaker is force-tripped — a corpse is deprioritized
//     and gated BEFORE any request pays for discovering it;
//   * a failed node RPC (dial/transport/refusal) moves its shards to the
//     next replica in the effective order and redials lazily;
//   * hedged reads: when enabled, a primary RPC that outlives the node's
//     adaptive latency quantile is raced against the shards' next
//     replica on a fresh connection; the first usable answer wins per
//     shard and the loser is aborted. A per-search hedge budget bounds
//     the extra RPCs so hedging can never storm a degraded fleet;
//   * a shard whose every replica failed either fails the search
//     (ServingError kUnavailable) or, under control.partial_ok,
//     contributes nothing and is counted in shards_failed;
//   * a node refusing with `stale cluster map` gets this coordinator's
//     map pushed (kMapUpdate) and the shards are retried against it —
//     invisible healing when the coordinator is ahead. If the node
//     refuses the push (ITS map is newer), the search aborts with a
//     typed error: only a fresh map at the caller can heal that.
//
// apply_map() is the live-rebalance entry point: node states survive by
// name (breakers and sessions carry over), the new map is pushed to
// every reachable node, and subsequent searches scatter under the new
// placement.
//
// Failpoint sites: "cluster.scatter" fires per node RPC (throw = the RPC
// fails and its shards fail over; delay = a slow replica), and
// "cluster.stale_map" makes the coordinator advertise version+1 — the
// stale-coordinator drill.
//
// Not thread-safe: one Coordinator per thread (the bench does exactly
// that), matching NetClient's contract. The internal heartbeat and
// scatter threads are coordinated by the implementation.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "auth/authority.h"
#include "cluster/health.h"
#include "cluster/placement.h"
#include "common/breaker.h"
#include "common/sha256.h"
#include "core/backend.h"
#include "core/capability_digest.h"
#include "net/client.h"

namespace apks::cluster {

inline constexpr const char* kSiteScatter = "cluster.scatter";
inline constexpr const char* kSiteStaleMap = "cluster.stale_map";

struct HedgeOptions {
  bool enabled = false;
  // Delay before racing the next replica: the per-node p`quantile` of its
  // recent RPC latencies, clamped to [min_delay_ms, max_delay_ms];
  // initial_delay_ms seeds the estimate while a node has no samples.
  std::uint64_t initial_delay_ms = 50;
  double quantile = 0.9;
  std::uint64_t min_delay_ms = 5;
  std::uint64_t max_delay_ms = 2000;
  // Hedge RPCs allowed per search (primaries and failover retries are not
  // counted — this bounds only the speculative extras).
  std::size_t budget = 2;
};

struct CoordinatorOptions {
  // Per-RPC socket budget: connect timeout and send/recv timeout on the
  // node connections (0 = block — scans are seconds-long, so the default
  // trusts the deadline machinery instead).
  std::uint64_t node_timeout_ms = 0;
  // Per-node circuit breaker (same semantics as the proxy pool's). The
  // coordinator seeds each node's cooldown jitter with its index.
  BreakerOptions breaker;
  // Heartbeat failure detection: 0 disables the monitor entirely;
  // otherwise a background thread pings every node each interval and
  // feeds replica ordering + breaker pre-tripping.
  std::uint64_t heartbeat_ms = 0;
  std::uint64_t ping_timeout_ms = 250;
  FailureDetectorOptions detector;
  // Hedged shard reads (off by default; see HedgeOptions).
  HedgeOptions hedge;
  // Edge auth memoization: verified SignedQuery digests kept in an LRU of
  // this capacity. 0 disables caching (every search_signed re-verifies).
  std::size_t auth_cache_capacity = 128;
};

// One cluster search's outcome. scanned/matched sum the per-shard engine
// figures; a hedged search may count a shard's scan effort twice (both
// racers ran) — the merged refs are still exactly the single-node bytes.
struct ClusterSearchStats {
  bool authorized = false;  // search_signed only
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  bool deadline_exceeded = false;
  bool cancelled = false;
  // Any contribution was a prefix or a shard gave up: the result is a
  // union of per-shard prefixes (partial_ok searches only).
  bool partial = false;
  std::size_t shards_ok = 0;      // shards that answered (fully or prefix)
  std::size_t shards_failed = 0;  // partial_ok: every replica failed
  std::size_t rpcs = 0;           // node RPCs issued (hedges included)
  std::size_t retries = 0;        // node RPCs that failed
  std::size_t failovers = 0;      // shard assignments moved to a later replica
  std::size_t breaker_opens = 0;
  std::size_t breaker_probes = 0;
  std::size_t breaker_skips = 0;
  std::size_t hedges = 0;          // speculative RPCs launched
  std::size_t hedge_wins = 0;      // hedges that resolved >= 1 shard
  std::size_t hedge_cancelled = 0; // racers aborted after losing
  std::size_t map_pushes = 0;      // kMapUpdate pushes to stale nodes
};

// Per-node health snapshot (mirrors ProxyPool::health).
struct NodeHealth {
  std::string name;
  std::size_t consecutive_failures = 0;
  bool breaker_open = false;
  NodeLiveness liveness = NodeLiveness::kAlive;  // kAlive when no monitor
  std::size_t heartbeat_misses = 0;
};

// Edge auth LRU counters.
struct AuthCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
};

class Coordinator {
 public:
  // The backend supplies the query codec for the internal hop; the
  // verifier is the edge's authentication. Both must outlive the
  // coordinator.
  Coordinator(const SearchBackend& backend, CapabilityVerifier verifier,
              ClusterMap map, CoordinatorOptions options = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Full protocol: verify the authority signature once (memoized in the
  // bounded LRU), then scatter. An unauthorized query returns empty with
  // stats.authorized == false and never touches the network (same
  // contract as CloudServer::search_signed).
  [[nodiscard]] std::vector<std::string> search_signed(
      const SignedQuery& query, ClusterSearchStats* stats = nullptr,
      const ServeControl& control = {});

  // Trusted-edge path (CLI/bench): skip the signature check.
  [[nodiscard]] std::vector<std::string> search_any(
      const AnyQuery& query, ClusterSearchStats* stats = nullptr,
      const ServeControl& control = {});

  // Live rebalance: adopt a strictly newer map. Node states carry over by
  // name (breaker history, sessions); the map is pushed to every
  // reachable node best-effort — unreachable ones are healed on demand by
  // the stale-map push-and-retry path. Throws std::invalid_argument when
  // the map is not strictly newer.
  void apply_map(const ClusterMap& new_map);

  [[nodiscard]] const ClusterMap& map() const noexcept { return map_; }
  [[nodiscard]] std::vector<NodeHealth> health() const;
  [[nodiscard]] AuthCacheStats auth_cache_stats() const noexcept {
    return auth_cache_stats_;
  }
  // The heartbeat monitor (nullptr when heartbeat_ms == 0 at
  // construction). Exposed so tests can drive deterministic rounds.
  [[nodiscard]] HealthMonitor* health_monitor() noexcept {
    return health_.get();
  }

 private:
  struct NodeState {
    std::shared_ptr<net::NetClient> client;  // lazily dialed, persistent
    CircuitBreaker breaker;
    bool authed = false;  // session holds `session_query`
    // The query bytes the node's session was last authorized for: a
    // repeat search with the same query skips the auth round-trip (the
    // node keeps its prepared session query between requests).
    std::vector<std::uint8_t> session_query;
    // Recent RPC latencies (ring, newest overwrites oldest) — the hedge
    // delay's quantile source.
    std::vector<std::uint64_t> latency_ring;
    std::size_t latency_pos = 0;
    // One map push per node per search: a node that stays stale after a
    // successful push is broken, not healable.
    bool map_pushed_this_search = false;
  };
  struct RpcOutcome {
    bool ok = false;
    net::ShardRemoteResult result;
    std::string error;
  };
  // One racer (primary or hedge) of a scatter round.
  struct Attempt {
    std::uint32_t node = 0;
    std::vector<std::uint32_t> shards;
    bool is_hedge = false;
    bool aborted = false;    // cancelled by the coordinator: not a fault
    bool processed = false;  // outcome consumed by the round loop
    RpcOutcome out;
    std::uint64_t duration_ms = 0;
    std::uint64_t hedge_at_ms = 0;  // launch a hedge when still running
    bool hedge_launched = false;
    // The exact client the attempt runs on (persistent for primaries,
    // owned ephemeral for hedges) — abort() targets this object even if
    // the node state redials meanwhile.
    std::shared_ptr<net::NetClient> client;
    std::thread thread;
    bool done = false;  // guarded by the round mutex
  };

  // Dial (if needed), establish the session query, and run one
  // shard-scoped RPC on the node's persistent client. Only ever called
  // from one thread per node at a time (a scatter round assigns each
  // node at most one primary).
  void run_node_rpc(std::uint32_t node,
                    const std::vector<std::uint32_t>& shards,
                    const std::vector<std::uint8_t>& query_bytes,
                    std::uint64_t map_version, std::uint64_t deadline_ms,
                    bool partial_ok, RpcOutcome& out,
                    std::shared_ptr<net::NetClient>* client_used,
                    std::mutex* client_mu);
  // The hedge path: a fresh connection + session, so it can race a
  // primary already talking to the same node.
  void run_hedge_rpc(const NodeInfo& info,
                     const std::vector<std::uint32_t>& shards,
                     const std::vector<std::uint8_t>& query_bytes,
                     std::uint64_t map_version, std::uint64_t deadline_ms,
                     bool partial_ok, net::NetClient& client,
                     RpcOutcome& out);
  // Push this coordinator's map to a stale node over a one-shot
  // connection. Returns true when the node ended at our version.
  bool push_map_to(std::uint32_t node, std::string* error);
  [[nodiscard]] std::uint64_t hedge_delay_ms(const NodeState& node) const;
  void note_latency(NodeState& node, std::uint64_t ms);
  [[nodiscard]] bool auth_cache_check(const SignedQuery& query);

  const SearchBackend* backend_;
  CapabilityVerifier verifier_;
  ClusterMap map_;
  CoordinatorOptions options_;
  std::vector<NodeState> nodes_;
  std::atomic<std::uint64_t> op_counter_{0};
  std::vector<std::uint8_t> map_bytes_;  // serialized map_, for pushes
  std::unique_ptr<HealthMonitor> health_;

  // Edge auth LRU: digest over (query bytes, issuer, signature bytes).
  std::list<Sha256::Digest> auth_lru_;  // front = most recent
  std::unordered_map<Sha256::Digest, std::list<Sha256::Digest>::iterator,
                     CapabilityDigestHash>
      auth_cache_;
  AuthCacheStats auth_cache_stats_;
};

}  // namespace apks::cluster
