// Coordinator — the scatter-gather edge of the cluster tier (DESIGN.md
// §5i).
//
// One coordinator holds a ClusterMap and a persistent NetClient per node.
// A search authenticates ONCE at the edge (the authority-signature check
// of the paper's protocol), then fans out shard-scoped kShardSearch RPCs
// to the owning nodes — the internal hop re-sends the query unchecked,
// which only nodes opted into allow_unchecked accept (the trusted-tier
// deployment). Per-shard hits come back with their record ids and are
// merged ascending by id: byte-identical to ShardedStore::search_any over
// the same records, because both sides run the identical concatenate-
// then-sort merge and ids are unique.
//
// Failure handling is the proxy pool's pattern lifted to nodes:
//
//   * every node has a CircuitBreaker (common/breaker.h) ticked on one
//     op counter per cluster search — a node that keeps failing is
//     skipped for cooldown_ops searches, then probed;
//   * a failed node RPC (dial/transport/refusal) moves its shards to the
//     next replica in HRW order and redials lazily on the next use;
//   * a shard whose every replica failed either fails the search
//     (ServingError kUnavailable) or, under control.partial_ok,
//     contributes nothing and is counted in shards_failed — the partial
//     result is a correct union of per-shard prefixes, never silently
//     wrong;
//   * a node refusing with `stale cluster map` aborts the search with a
//     typed error (refreshing the map is the caller's move — retrying
//     replicas cannot heal a version mismatch).
//
// Failpoint sites: "cluster.scatter" fires per node RPC (throw = the RPC
// fails and its shards fail over; delay = a slow replica), and
// "cluster.stale_map" makes the coordinator advertise version+1 — the
// stale-coordinator drill.
//
// Not thread-safe: one Coordinator per thread (the bench does exactly
// that), matching NetClient's contract.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "auth/authority.h"
#include "cluster/placement.h"
#include "common/breaker.h"
#include "core/backend.h"
#include "net/client.h"

namespace apks::cluster {

inline constexpr const char* kSiteScatter = "cluster.scatter";
inline constexpr const char* kSiteStaleMap = "cluster.stale_map";

struct CoordinatorOptions {
  // Per-RPC socket budget: connect timeout and send/recv timeout on the
  // node connections (0 = block — scans are seconds-long, so the default
  // trusts the deadline machinery instead).
  std::uint64_t node_timeout_ms = 0;
  // Per-node circuit breaker (same semantics as the proxy pool's).
  BreakerOptions breaker;
};

// One cluster search's outcome. scanned/matched sum the per-shard engine
// figures, so a full scatter reports exactly the single-node numbers.
struct ClusterSearchStats {
  bool authorized = false;  // search_signed only
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  bool deadline_exceeded = false;
  bool cancelled = false;
  // Any contribution was a prefix or a shard gave up: the result is a
  // union of per-shard prefixes (partial_ok searches only).
  bool partial = false;
  std::size_t shards_ok = 0;      // shards that answered (fully or prefix)
  std::size_t shards_failed = 0;  // partial_ok: every replica failed
  std::size_t rpcs = 0;           // node RPCs issued
  std::size_t retries = 0;        // node RPCs that failed
  std::size_t failovers = 0;      // shard assignments moved to a later replica
  std::size_t breaker_opens = 0;
  std::size_t breaker_probes = 0;
  std::size_t breaker_skips = 0;
};

// Per-node health snapshot (mirrors ProxyPool::health).
struct NodeHealth {
  std::string name;
  std::size_t consecutive_failures = 0;
  bool breaker_open = false;
};

class Coordinator {
 public:
  // The backend supplies the query codec for the internal hop; the
  // verifier is the edge's authentication. Both must outlive the
  // coordinator.
  Coordinator(const SearchBackend& backend, CapabilityVerifier verifier,
              ClusterMap map, CoordinatorOptions options = {});
  ~Coordinator();

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  // Full protocol: verify the authority signature once, then scatter.
  // An unauthorized query returns empty with stats.authorized == false
  // and never touches the network (same contract as
  // CloudServer::search_signed).
  [[nodiscard]] std::vector<std::string> search_signed(
      const SignedQuery& query, ClusterSearchStats* stats = nullptr,
      const ServeControl& control = {});

  // Trusted-edge path (CLI/bench): skip the signature check.
  [[nodiscard]] std::vector<std::string> search_any(
      const AnyQuery& query, ClusterSearchStats* stats = nullptr,
      const ServeControl& control = {});

  [[nodiscard]] const ClusterMap& map() const noexcept { return map_; }
  [[nodiscard]] std::vector<NodeHealth> health() const;

 private:
  struct NodeState {
    std::unique_ptr<net::NetClient> client;  // lazily dialed, persistent
    CircuitBreaker breaker;
    bool authed = false;  // session holds `session_query`
    // The query bytes the node's session was last authorized for: a
    // repeat search with the same query skips the auth round-trip (the
    // node keeps its prepared session query between requests).
    std::vector<std::uint8_t> session_query;
  };
  struct RpcOutcome {
    bool ok = false;
    net::ShardRemoteResult result;
    std::string error;
  };

  // Dial (if needed), establish the session query, and run one
  // shard-scoped RPC. Only ever called from one thread per node at a
  // time (a scatter round assigns each node at most one group).
  void run_node_rpc(std::uint32_t node, const std::vector<std::uint32_t>& shards,
                    const std::vector<std::uint8_t>& query_bytes,
                    std::uint64_t map_version, std::uint64_t deadline_ms,
                    bool partial_ok, RpcOutcome& out);

  const SearchBackend* backend_;
  CapabilityVerifier verifier_;
  ClusterMap map_;
  CoordinatorOptions options_;
  std::vector<NodeState> nodes_;
  std::uint64_t op_counter_ = 0;
};

}  // namespace apks::cluster
