#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/failpoint.h"

namespace apks::cluster {

using net::WireStatus;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ms(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            since)
          .count());
}

constexpr std::size_t kLatencyRingCapacity = 32;
// Map pushes must converge even when node_timeout_ms is 0 (block forever):
// a push to a dead node is bounded by this budget instead.
constexpr std::uint64_t kMapPushTimeoutMs = 2000;

}  // namespace

Coordinator::Coordinator(const SearchBackend& backend,
                         CapabilityVerifier verifier, ClusterMap map,
                         CoordinatorOptions options)
    : backend_(&backend),
      verifier_(std::move(verifier)),
      map_(std::move(map)),
      options_(options) {
  nodes_.resize(map_.nodes().size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].breaker = CircuitBreaker(options_.breaker);
    nodes_[i].breaker.seed_jitter(i);
  }
  map_bytes_ = map_.serialize();
  if (options_.heartbeat_ms != 0) {
    HealthMonitorOptions h;
    h.interval_ms = options_.heartbeat_ms;
    h.ping_timeout_ms = options_.ping_timeout_ms;
    h.detector = options_.detector;
    health_ = std::make_unique<HealthMonitor>(backend_->kind(), map_, h);
  }
}

Coordinator::~Coordinator() = default;

std::vector<NodeHealth> Coordinator::health() const {
  std::vector<NodeHealthSnapshot> hb;
  if (health_ != nullptr) hb = health_->snapshot();
  const std::uint64_t now_op = op_counter_.load(std::memory_order_relaxed);
  std::vector<NodeHealth> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    NodeHealth h;
    h.name = map_.nodes()[i].name;
    h.consecutive_failures = nodes_[i].breaker.consecutive_failures();
    h.breaker_open = nodes_[i].breaker.open_now(now_op);
    if (i < hb.size()) {
      h.liveness = hb[i].liveness;
      h.heartbeat_misses = hb[i].misses;
    }
    out.push_back(std::move(h));
  }
  return out;
}

bool Coordinator::auth_cache_check(const SignedQuery& query) {
  if (options_.auth_cache_capacity == 0) {
    return verifier_.verify(*backend_, query);
  }
  // Key = H(len(query) || query || len(issuer) || issuer || len(sig) ||
  // sig): any change to what the verifier would see changes the key.
  const std::vector<std::uint8_t> query_bytes =
      backend_->encode_query(query.query);
  const std::vector<std::uint8_t> sig_bytes =
      net::encode_signature(backend_->pairing().curve(), query.sig);
  Sha256 h;
  const auto update_sized = [&h](std::span<const std::uint8_t> data) {
    std::uint8_t len[8];
    std::uint64_t n = data.size();
    for (int i = 0; i < 8; ++i) len[i] = static_cast<std::uint8_t>(n >> (8 * i));
    h.update(std::span<const std::uint8_t>(len, 8));
    h.update(data);
  };
  update_sized(query_bytes);
  update_sized(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(query.issuer.data()),
      query.issuer.size()));
  update_sized(sig_bytes);
  const Sha256::Digest digest = h.finish();

  const auto it = auth_cache_.find(digest);
  if (it != auth_cache_.end()) {
    ++auth_cache_stats_.hits;
    auth_lru_.splice(auth_lru_.begin(), auth_lru_, it->second);
    return true;
  }
  ++auth_cache_stats_.misses;
  if (!verifier_.verify(*backend_, query)) return false;
  // Only positives are cached: a rejected signature may become valid
  // after authority registration changes, and negatives are cheap to
  // re-reject anyway.
  auth_lru_.push_front(digest);
  auth_cache_.emplace(digest, auth_lru_.begin());
  while (auth_cache_.size() > options_.auth_cache_capacity) {
    auth_cache_.erase(auth_lru_.back());
    auth_lru_.pop_back();
    ++auth_cache_stats_.evictions;
  }
  auth_cache_stats_.size = auth_cache_.size();
  return true;
}

std::vector<std::string> Coordinator::search_signed(
    const SignedQuery& query, ClusterSearchStats* stats,
    const ServeControl& control) {
  ClusterSearchStats local;
  ClusterSearchStats& s = stats != nullptr ? *stats : local;
  if (!auth_cache_check(query)) {
    s = ClusterSearchStats{};  // authorized stays false; nothing scanned
    return {};
  }
  std::vector<std::string> refs = search_any(query.query, &s, control);
  s.authorized = true;
  return refs;
}

void Coordinator::apply_map(const ClusterMap& new_map) {
  if (new_map.version() <= map_.version()) {
    throw std::invalid_argument(
        "Coordinator: map v" + std::to_string(new_map.version()) +
        " is not newer than the held v" + std::to_string(map_.version()));
  }
  // Node states survive by name: breaker history and live sessions carry
  // over; a node whose address moved gets a fresh connection.
  std::vector<NodeState> next(new_map.nodes().size());
  for (std::size_t i = 0; i < new_map.nodes().size(); ++i) {
    const NodeInfo& info = new_map.nodes()[i];
    bool carried = false;
    for (std::size_t j = 0; j < map_.nodes().size(); ++j) {
      if (map_.nodes()[j].name != info.name) continue;
      next[i] = std::move(nodes_[j]);
      if (map_.nodes()[j].host != info.host ||
          map_.nodes()[j].port != info.port) {
        next[i].client.reset();
        next[i].authed = false;
      }
      carried = true;
      break;
    }
    if (!carried) {
      next[i].breaker = CircuitBreaker(options_.breaker);
      next[i].breaker.seed_jitter(i);
    }
  }
  nodes_ = std::move(next);
  map_ = new_map;
  map_bytes_ = map_.serialize();
  if (health_ != nullptr) health_->set_map(map_);
  // Best-effort fan-out of the new map; a node that misses it is healed
  // on demand by the stale-map push-and-retry path.
  for (std::uint32_t i = 0; i < map_.nodes().size(); ++i) {
    std::string err;
    (void)push_map_to(i, &err);
  }
}

bool Coordinator::push_map_to(std::uint32_t node, std::string* error) {
  const NodeInfo& info = map_.nodes()[node];
  const std::uint64_t timeout = options_.node_timeout_ms != 0
                                    ? options_.node_timeout_ms
                                    : kMapPushTimeoutMs;
  try {
    net::NetClient client;
    client.connect(info.host, info.port, timeout);
    const net::HelloAckMsg hello = client.hello(backend_->kind());
    if (hello.status != WireStatus::kOk) {
      throw ServingError(ErrorCode::kUnavailable,
                         "hello refused: " + hello.message);
    }
    const net::MapUpdateAckMsg ack = client.push_map(map_bytes_);
    if (ack.status == WireStatus::kOk && ack.version == map_.version()) {
      return true;
    }
    if (error != nullptr) {
      *error = !ack.message.empty()
                   ? ack.message
                   : "node stayed at map v" + std::to_string(ack.version);
    }
    return false;
  } catch (const std::exception& ex) {
    if (error != nullptr) *error = ex.what();
    return false;
  }
}

std::uint64_t Coordinator::hedge_delay_ms(const NodeState& node) const {
  const HedgeOptions& h = options_.hedge;
  std::uint64_t delay = h.initial_delay_ms;
  if (!node.latency_ring.empty()) {
    std::vector<std::uint64_t> sorted = node.latency_ring;
    std::sort(sorted.begin(), sorted.end());
    const double q = std::clamp(h.quantile, 0.0, 1.0);
    const std::size_t idx = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    delay = sorted[idx];
  }
  return std::clamp(delay, h.min_delay_ms, h.max_delay_ms);
}

void Coordinator::note_latency(NodeState& node, std::uint64_t ms) {
  if (node.latency_ring.size() < kLatencyRingCapacity) {
    node.latency_ring.push_back(ms);
  } else {
    node.latency_ring[node.latency_pos] = ms;
  }
  node.latency_pos = (node.latency_pos + 1) % kLatencyRingCapacity;
}

std::vector<std::string> Coordinator::search_any(const AnyQuery& query,
                                                 ClusterSearchStats* stats,
                                                 const ServeControl& control) {
  ClusterSearchStats local;
  ClusterSearchStats& s = stats != nullptr ? *stats : local;
  s = ClusterSearchStats{};
  const std::uint64_t now_op =
      op_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  const Clock::time_point t0 = Clock::now();
  const std::vector<std::uint8_t> query_bytes = backend_->encode_query(query);
  for (NodeState& node : nodes_) node.map_pushed_this_search = false;

  // Proactive health: a node the heartbeats declared dead gets its breaker
  // force-tripped (nothing waits on a corpse) and every shard's replica
  // order is re-sorted by liveness rank so suspects are tried last.
  std::vector<NodeLiveness> rank(nodes_.size(), NodeLiveness::kAlive);
  if (health_ != nullptr) {
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
      rank[i] = health_->liveness(i);
      if (rank[i] == NodeLiveness::kDead) {
        if (nodes_[i].breaker.trip(now_op)) ++s.breaker_opens;
        // The persistent session died with the node: drop it now so the
        // post-revival probe dials fresh instead of failing once on a
        // half-open socket.
        nodes_[i].client.reset();
        nodes_[i].authed = false;
      }
    }
  }
  std::vector<std::vector<std::uint32_t>> order(map_.total_shards());
  for (std::uint32_t shard = 0; shard < map_.total_shards(); ++shard) {
    order[shard] = map_.replicas_of(shard);
    if (health_ != nullptr) {
      std::stable_sort(order[shard].begin(), order[shard].end(),
                       [&](std::uint32_t a, std::uint32_t b) {
                         return static_cast<int>(rank[a]) <
                                static_cast<int>(rank[b]);
                       });
    }
  }

  // The stale-coordinator drill: advertise a version the nodes don't
  // hold, so every shard RPC comes back `stale cluster map`.
  std::uint64_t advertised_version = map_.version();
  try {
    if (failpoint(kSiteStaleMap).fired()) ++advertised_version;
  } catch (const FailpointError&) {
    ++advertised_version;
  }

  const bool hedge_active = options_.hedge.enabled;
  std::size_t hedge_budget_left = options_.hedge.budget;

  // Per-shard failover cursor: index into the shard's (liveness-ordered)
  // replica list of the next node to try. A shard leaves `pending` when a
  // node answered for it or every replica failed.
  std::vector<std::size_t> next_replica(map_.total_shards(), 0);
  std::vector<char> pending(map_.total_shards(), 1);
  std::size_t pending_count = map_.total_shards();
  std::vector<std::vector<net::ShardHit>> parts;
  std::string last_error;

  while (pending_count > 0) {
    // Honour the caller's global budget between rounds (node-side engine
    // deadlines handle mid-scan expiry).
    std::uint64_t remaining_ms = control.deadline_ms;
    if (control.deadline_ms != 0) {
      const std::uint64_t spent = elapsed_ms(t0);
      if (spent >= control.deadline_ms) {
        if (!control.partial_ok) {
          throw DeadlineExceeded("cluster search deadline exceeded");
        }
        s.deadline_exceeded = true;
        s.partial = true;
        s.shards_failed += pending_count;
        break;
      }
      remaining_ms = control.deadline_ms - spent;
    }
    if (control.cancel != nullptr &&
        control.cancel->load(std::memory_order_relaxed)) {
      if (!control.partial_ok) {
        throw ServingError(ErrorCode::kCancelled, "cluster search cancelled");
      }
      s.cancelled = true;
      s.partial = true;
      s.shards_failed += pending_count;
      break;
    }

    // Assign every pending shard to its next untried replica, grouped by
    // node (one primary RPC per node per round).
    std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t shard = 0; shard < map_.total_shards(); ++shard) {
      if (pending[shard] == 0) continue;
      const std::vector<std::uint32_t>& replicas = order[shard];
      if (next_replica[shard] >= replicas.size()) {
        // Every replica of this shard failed.
        if (!control.partial_ok) {
          throw ServingError(
              ErrorCode::kUnavailable,
              "shard " + std::to_string(shard) + " unavailable after " +
                  std::to_string(replicas.size()) + " replica attempts" +
                  (last_error.empty() ? "" : " (last error: " + last_error +
                                                 ")"));
        }
        pending[shard] = 0;
        --pending_count;
        ++s.shards_failed;
        s.partial = true;
        continue;
      }
      if (next_replica[shard] > 0) ++s.failovers;
      groups[replicas[next_replica[shard]]].push_back(shard);
    }
    if (groups.empty()) break;

    // Breaker gate per node, then one RPC thread per admitted node.
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> batch;
    for (auto& [node, shards] : groups) {
      switch (nodes_[node].breaker.admit(now_op)) {
        case CircuitBreaker::Gate::kSkip:
          ++s.breaker_skips;
          last_error = "node '" + map_.nodes()[node].name +
                       "' skipped (breaker open)";
          for (const std::uint32_t shard : shards) ++next_replica[shard];
          continue;
        case CircuitBreaker::Gate::kProbe:
          ++s.breaker_probes;
          break;
        case CircuitBreaker::Gate::kClosed:
          break;
      }
      batch.emplace_back(node, std::move(shards));
    }
    if (batch.empty()) continue;

    // --- one scatter round: primaries, plus hedges racing slow ones -----
    std::mutex round_mu;
    std::condition_variable round_cv;
    std::vector<std::unique_ptr<Attempt>> attempts;
    attempts.reserve(batch.size());
    const Clock::time_point round_t0 = Clock::now();
    std::exception_ptr round_error;

    const auto launch_thread = [&](Attempt* a) {
      const bool partial_ok = control.partial_ok;
      a->thread = std::thread([this, a, &query_bytes, advertised_version,
                               remaining_ms, partial_ok, &round_mu, &round_cv,
                               round_t0] {
        if (a->is_hedge) {
          run_hedge_rpc(map_.nodes()[a->node], a->shards, query_bytes,
                        advertised_version, remaining_ms, partial_ok,
                        *a->client, a->out);
        } else {
          run_node_rpc(a->node, a->shards, query_bytes, advertised_version,
                       remaining_ms, partial_ok, a->out, &a->client,
                       &round_mu);
        }
        {
          std::lock_guard lk(round_mu);
          a->duration_ms = elapsed_ms(round_t0);
          a->done = true;
        }
        round_cv.notify_all();
      });
    };

    s.rpcs += batch.size();
    for (auto& [node, shards] : batch) {
      auto a = std::make_unique<Attempt>();
      a->node = node;
      a->shards = std::move(shards);
      a->hedge_at_ms = hedge_delay_ms(nodes_[node]);
      Attempt* ap = a.get();
      attempts.push_back(std::move(a));
      launch_thread(ap);
    }

    // Abort every unfinished attempt (terminal error / loser cancel).
    const auto abort_attempt = [&](Attempt* a) {
      if (a->aborted) return;
      a->aborted = true;
      std::shared_ptr<net::NetClient> client;
      {
        std::lock_guard lk(round_mu);
        if (!a->done) client = a->client;
      }
      if (client != nullptr) client->abort();
    };
    const auto abort_all = [&] {
      for (auto& a : attempts) abort_attempt(a.get());
    };

    // Launch the speculative racers for one slow primary: its still-
    // pending shards, grouped by each shard's NEXT replica in the
    // effective order, each sub-group one fresh-connection RPC.
    const auto launch_hedges_for = [&](Attempt* a) {
      a->hedge_launched = true;
      std::map<std::uint32_t, std::vector<std::uint32_t>> targets;
      for (const std::uint32_t shard : a->shards) {
        if (pending[shard] == 0) continue;
        const std::vector<std::uint32_t>& replicas = order[shard];
        const std::size_t nx = next_replica[shard] + 1;
        if (nx < replicas.size()) targets[replicas[nx]].push_back(shard);
      }
      for (auto& [tnode, tshards] : targets) {
        if (hedge_budget_left == 0) break;
        if (tnode == a->node) continue;
        if (nodes_[tnode].breaker.admit(now_op) ==
            CircuitBreaker::Gate::kSkip) {
          continue;
        }
        --hedge_budget_left;
        ++s.hedges;
        ++s.rpcs;
        auto hedge = std::make_unique<Attempt>();
        hedge->node = tnode;
        hedge->shards = std::move(tshards);
        hedge->is_hedge = true;
        hedge->client = std::make_shared<net::NetClient>();
        Attempt* hp = hedge.get();
        attempts.push_back(std::move(hedge));
        launch_thread(hp);
      }
    };

    // Consume one finished attempt's outcome (round_mu NOT held).
    const auto process = [&](Attempt* a) {
      NodeState& st = nodes_[a->node];
      if (!a->aborted) note_latency(st, a->duration_ms);
      RpcOutcome& out = a->out;
      if (!out.ok) {
        if (a->aborted) {
          ++s.hedge_cancelled;
          return;
        }
        ++s.retries;
        last_error = out.error;
        if (st.breaker.on_failure(now_op)) ++s.breaker_opens;
        if (!a->is_hedge) {
          for (const std::uint32_t shard : a->shards) {
            if (pending[shard] != 0) ++next_replica[shard];
          }
        }
        return;
      }
      net::ShardRemoteResult& result = out.result;
      switch (result.status) {
        case WireStatus::kOk:
        case WireStatus::kDeadlineExceeded: {
          // kDeadlineExceeded: the node answered properly; the request
          // budget ran out. Not a node fault — no failover (a replica
          // would be no faster). A kCancelled, by contrast, means the
          // NODE abandoned the scan (shutdown / dying connection) — the
          // default (failover) case below, since the coordinator's own
          // loser-cancels surface as transport errors, not statuses.
          st.breaker.on_success();
          if (result.status == WireStatus::kDeadlineExceeded) {
            if (!control.partial_ok) {
              if (round_error == nullptr) {
                round_error = std::make_exception_ptr(DeadlineExceeded(
                    result.message.empty()
                        ? "cluster search deadline exceeded"
                        : result.message));
              }
              abort_all();
              return;
            }
            s.deadline_exceeded = true;
            s.partial = true;
          }
          // First usable answer wins PER SHARD: a racer that lost every
          // shard contributes nothing (its scan effort is the hedging
          // overhead the budget bounds).
          std::vector<std::uint32_t> accepted;
          for (const std::uint32_t shard : a->shards) {
            if (pending[shard] != 0) accepted.push_back(shard);
          }
          if (accepted.empty()) return;
          s.scanned += result.scanned;
          s.matched += result.matched;
          s.shards_ok += accepted.size();
          if (accepted.size() == a->shards.size()) {
            parts.push_back(std::move(result.hits));
          } else {
            const std::uint64_t total = map_.total_shards();
            std::vector<net::ShardHit> kept;
            for (net::ShardHit& hit : result.hits) {
              const auto shard = static_cast<std::uint32_t>(hit.id % total);
              if (std::find(accepted.begin(), accepted.end(), shard) !=
                  accepted.end()) {
                kept.push_back(std::move(hit));
              }
            }
            parts.push_back(std::move(kept));
          }
          for (const std::uint32_t shard : accepted) {
            pending[shard] = 0;
            --pending_count;
          }
          if (a->is_hedge) ++s.hedge_wins;
          // Cancel racers whose every shard is now resolved.
          for (auto& other : attempts) {
            if (other.get() == a || other->processed) continue;
            bool moot = true;
            for (const std::uint32_t shard : other->shards) {
              if (pending[shard] != 0) {
                moot = false;
                break;
              }
            }
            if (moot) abort_attempt(other.get());
          }
          return;
        }
        case WireStatus::kBadRequest: {
          st.breaker.on_success();
          if (result.message.find("stale cluster map") != std::string::npos &&
              !st.map_pushed_this_search) {
            // The node holds an older map than we advertise: push ours
            // and retry the shards against it next round — the invisible
            // half of a live rebalance. One push per node per search; a
            // node still stale after a successful push is broken.
            st.map_pushed_this_search = true;
            ++s.map_pushes;
            std::string err;
            if (push_map_to(a->node, &err)) return;  // shards stay pending
            if (round_error == nullptr) {
              round_error = std::make_exception_ptr(ServingError(
                  ErrorCode::kUnavailable,
                  "node '" + map_.nodes()[a->node].name +
                      "' refused: " + result.message +
                      " (map push failed: " + err + ")"));
            }
            abort_all();
            return;
          }
          // Protocol-level refusal replicas cannot heal: surface it.
          if (round_error == nullptr) {
            round_error = std::make_exception_ptr(ServingError(
                ErrorCode::kUnavailable, "node '" +
                                             map_.nodes()[a->node].name +
                                             "' refused: " + result.message));
          }
          abort_all();
          return;
        }
        default:
          // kOverloaded / kShutdown / kUnavailable / kIo...: this
          // replica can't serve right now; try the next.
          ++s.retries;
          last_error = "node '" + map_.nodes()[a->node].name + "' status " +
                       result.message;
          if (st.breaker.on_failure(now_op)) ++s.breaker_opens;
          if (!a->is_hedge) {
            for (const std::uint32_t shard : a->shards) {
              if (pending[shard] != 0) ++next_replica[shard];
            }
          }
          return;
      }
    };

    // Event loop: consume completions as they land (ordering is what
    // makes loser-cancel and per-shard winners work), launching hedges
    // when a primary outlives its node's adaptive delay.
    for (;;) {
      std::vector<Attempt*> finished;
      {
        std::unique_lock lk(round_mu);
        for (;;) {
          finished.clear();
          bool all_done = true;
          for (auto& a : attempts) {
            if (a->done && !a->processed) finished.push_back(a.get());
            if (!a->done) all_done = false;
          }
          if (!finished.empty() || all_done) break;
          // Earliest hedge deadline among running primaries.
          std::uint64_t next_hedge = UINT64_MAX;
          if (hedge_active && hedge_budget_left > 0 &&
              round_error == nullptr) {
            const std::uint64_t now_ms = elapsed_ms(round_t0);
            for (auto& a : attempts) {
              if (a->done || a->is_hedge || a->hedge_launched || a->aborted) {
                continue;
              }
              if (a->hedge_at_ms <= now_ms) {
                launch_hedges_for(a.get());
                next_hedge = 0;  // recompute: attempts changed
                break;
              }
              next_hedge = std::min(next_hedge, a->hedge_at_ms);
            }
            if (next_hedge == 0) continue;
          }
          if (next_hedge == UINT64_MAX) {
            round_cv.wait(lk);
          } else {
            round_cv.wait_until(
                lk, round_t0 + std::chrono::milliseconds(next_hedge));
          }
        }
      }
      if (finished.empty()) break;  // every attempt done and processed
      for (Attempt* a : finished) {
        process(a);
        a->processed = true;
      }
    }
    for (auto& a : attempts) {
      if (a->thread.joinable()) a->thread.join();
    }
    if (round_error != nullptr) std::rethrow_exception(round_error);
  }

  // The scatter may have completed only after the caller's budget ran
  // out (a slow replica stalls the whole round). A strict caller's
  // deadline is a contract, not a hint — a late answer is still a miss.
  if (control.deadline_ms != 0 && elapsed_ms(t0) >= control.deadline_ms) {
    if (!control.partial_ok) {
      throw DeadlineExceeded("cluster search deadline exceeded");
    }
    s.deadline_exceeded = true;
  }

  return merge_by_id(std::move(parts));
}

void Coordinator::run_node_rpc(std::uint32_t node,
                               const std::vector<std::uint32_t>& shards,
                               const std::vector<std::uint8_t>& query_bytes,
                               std::uint64_t map_version,
                               std::uint64_t deadline_ms, bool partial_ok,
                               RpcOutcome& out,
                               std::shared_ptr<net::NetClient>* client_used,
                               std::mutex* client_mu) {
  NodeState& state = nodes_[node];
  const NodeInfo& info = map_.nodes()[node];
  try {
    (void)failpoint(kSiteScatter);  // kThrow fails the RPC, kDelay stalls it
    if (state.client == nullptr || !state.client->connected()) {
      auto client = std::make_shared<net::NetClient>();
      client->connect(info.host, info.port, options_.node_timeout_ms);
      const net::HelloAckMsg hello = client->hello(backend_->kind());
      if (hello.status != WireStatus::kOk) {
        throw ServingError(ErrorCode::kUnavailable,
                           "hello refused: " + hello.message);
      }
      state.client = std::move(client);
      state.authed = false;
    }
    if (client_used != nullptr) {
      // Publish the exact client this attempt blocks on, so the round
      // loop can abort() it cross-thread if a hedge wins.
      std::lock_guard lk(*client_mu);
      *client_used = state.client;
    }
    if (!state.authed || state.session_query != query_bytes) {
      const net::AuthAckMsg ack = state.client->auth_unchecked(query_bytes);
      if (ack.status != WireStatus::kOk) {
        throw ServingError(ErrorCode::kUnavailable,
                           "auth refused: " + ack.message);
      }
      state.authed = true;
      state.session_query = query_bytes;
    }
    out.result = state.client->shard_search(
        shards, map_version, map_.total_shards(), deadline_ms, partial_ok);
    out.ok = true;
  } catch (const std::exception& ex) {
    out.error = "node '" + info.name + "': " + ex.what();
    // Drop the connection: a transport fault leaves the stream in an
    // unknown state, and the next attempt redials cleanly.
    state.client.reset();
    state.authed = false;
  }
}

void Coordinator::run_hedge_rpc(const NodeInfo& info,
                                const std::vector<std::uint32_t>& shards,
                                const std::vector<std::uint8_t>& query_bytes,
                                std::uint64_t map_version,
                                std::uint64_t deadline_ms, bool partial_ok,
                                net::NetClient& client, RpcOutcome& out) {
  // A fresh connection + session every time: the node may be serving a
  // primary RPC on its persistent session concurrently, and NetClient is
  // strictly one-thread-at-a-time.
  try {
    (void)failpoint(kSiteScatter);
    client.connect(info.host, info.port, options_.node_timeout_ms);
    const net::HelloAckMsg hello = client.hello(backend_->kind());
    if (hello.status != WireStatus::kOk) {
      throw ServingError(ErrorCode::kUnavailable,
                         "hello refused: " + hello.message);
    }
    const net::AuthAckMsg ack = client.auth_unchecked(query_bytes);
    if (ack.status != WireStatus::kOk) {
      throw ServingError(ErrorCode::kUnavailable,
                         "auth refused: " + ack.message);
    }
    out.result = client.shard_search(shards, map_version,
                                     map_.total_shards(), deadline_ms,
                                     partial_ok);
    out.ok = true;
  } catch (const std::exception& ex) {
    out.error = "hedge to '" + info.name + "': " + ex.what();
  }
}

}  // namespace apks::cluster
