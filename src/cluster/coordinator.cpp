#include "cluster/coordinator.h"

#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/failpoint.h"

namespace apks::cluster {

using net::WireStatus;

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ms(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            since)
          .count());
}

}  // namespace

Coordinator::Coordinator(const SearchBackend& backend,
                         CapabilityVerifier verifier, ClusterMap map,
                         CoordinatorOptions options)
    : backend_(&backend),
      verifier_(std::move(verifier)),
      map_(std::move(map)),
      options_(options) {
  nodes_.resize(map_.nodes().size());
  for (NodeState& node : nodes_) {
    node.breaker = CircuitBreaker(options_.breaker);
  }
}

Coordinator::~Coordinator() = default;

std::vector<NodeHealth> Coordinator::health() const {
  std::vector<NodeHealth> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.push_back(NodeHealth{
        map_.nodes()[i].name,
        nodes_[i].breaker.consecutive_failures(),
        nodes_[i].breaker.open_now(op_counter_),
    });
  }
  return out;
}

std::vector<std::string> Coordinator::search_signed(
    const SignedQuery& query, ClusterSearchStats* stats,
    const ServeControl& control) {
  ClusterSearchStats local;
  ClusterSearchStats& s = stats != nullptr ? *stats : local;
  if (!verifier_.verify(*backend_, query)) {
    s = ClusterSearchStats{};  // authorized stays false; nothing scanned
    return {};
  }
  std::vector<std::string> refs = search_any(query.query, &s, control);
  s.authorized = true;
  return refs;
}

std::vector<std::string> Coordinator::search_any(const AnyQuery& query,
                                                 ClusterSearchStats* stats,
                                                 const ServeControl& control) {
  ClusterSearchStats local;
  ClusterSearchStats& s = stats != nullptr ? *stats : local;
  s = ClusterSearchStats{};
  ++op_counter_;
  const Clock::time_point t0 = Clock::now();
  const std::vector<std::uint8_t> query_bytes = backend_->encode_query(query);

  // The stale-coordinator drill: advertise a version the nodes don't
  // hold, so every shard RPC comes back `stale cluster map`.
  std::uint64_t advertised_version = map_.version();
  try {
    if (failpoint(kSiteStaleMap).fired()) ++advertised_version;
  } catch (const FailpointError&) {
    ++advertised_version;
  }

  // Per-shard failover cursor: index into the shard's replica set of the
  // next node to try. A shard leaves `pending` when a node answered for
  // it or every replica failed.
  std::vector<std::size_t> next_replica(map_.total_shards(), 0);
  std::vector<char> pending(map_.total_shards(), 1);
  std::size_t pending_count = map_.total_shards();
  std::vector<std::vector<net::ShardHit>> parts;
  std::string last_error;

  while (pending_count > 0) {
    // Honour the caller's global budget between rounds (node-side engine
    // deadlines handle mid-scan expiry).
    std::uint64_t remaining_ms = control.deadline_ms;
    if (control.deadline_ms != 0) {
      const std::uint64_t spent = elapsed_ms(t0);
      if (spent >= control.deadline_ms) {
        if (!control.partial_ok) {
          throw DeadlineExceeded("cluster search deadline exceeded");
        }
        s.deadline_exceeded = true;
        s.partial = true;
        s.shards_failed += pending_count;
        break;
      }
      remaining_ms = control.deadline_ms - spent;
    }
    if (control.cancel != nullptr &&
        control.cancel->load(std::memory_order_relaxed)) {
      if (!control.partial_ok) {
        throw ServingError(ErrorCode::kCancelled, "cluster search cancelled");
      }
      s.cancelled = true;
      s.partial = true;
      s.shards_failed += pending_count;
      break;
    }

    // Assign every pending shard to its next untried replica, grouped by
    // node (one RPC per node per round).
    std::map<std::uint32_t, std::vector<std::uint32_t>> groups;
    for (std::uint32_t shard = 0; shard < map_.total_shards(); ++shard) {
      if (pending[shard] == 0) continue;
      const std::vector<std::uint32_t>& replicas = map_.replicas_of(shard);
      if (next_replica[shard] >= replicas.size()) {
        // Every replica of this shard failed.
        if (!control.partial_ok) {
          throw ServingError(
              ErrorCode::kUnavailable,
              "shard " + std::to_string(shard) + " unavailable after " +
                  std::to_string(replicas.size()) + " replica attempts" +
                  (last_error.empty() ? "" : " (last error: " + last_error +
                                                 ")"));
        }
        pending[shard] = 0;
        --pending_count;
        ++s.shards_failed;
        s.partial = true;
        continue;
      }
      if (next_replica[shard] > 0) ++s.failovers;
      groups[replicas[next_replica[shard]]].push_back(shard);
    }
    if (groups.empty()) break;

    // Breaker gate per node, then one RPC thread per admitted node.
    std::vector<std::pair<std::uint32_t, std::vector<std::uint32_t>>> batch;
    for (auto& [node, shards] : groups) {
      switch (nodes_[node].breaker.admit(op_counter_)) {
        case CircuitBreaker::Gate::kSkip:
          ++s.breaker_skips;
          last_error = "node '" + map_.nodes()[node].name +
                       "' skipped (breaker open)";
          for (const std::uint32_t shard : shards) ++next_replica[shard];
          continue;
        case CircuitBreaker::Gate::kProbe:
          ++s.breaker_probes;
          break;
        case CircuitBreaker::Gate::kClosed:
          break;
      }
      batch.emplace_back(node, std::move(shards));
    }
    if (batch.empty()) continue;

    std::vector<RpcOutcome> outcomes(batch.size());
    std::vector<std::thread> threads;
    threads.reserve(batch.size());
    s.rpcs += batch.size();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      threads.emplace_back([&, i] {
        run_node_rpc(batch[i].first, batch[i].second, query_bytes,
                     advertised_version, remaining_ms, control.partial_ok,
                     outcomes[i]);
      });
    }
    for (std::thread& t : threads) t.join();

    for (std::size_t i = 0; i < batch.size(); ++i) {
      const std::uint32_t node = batch[i].first;
      const std::vector<std::uint32_t>& shards = batch[i].second;
      RpcOutcome& out = outcomes[i];
      if (!out.ok) {
        ++s.retries;
        last_error = out.error;
        if (nodes_[node].breaker.on_failure(op_counter_)) ++s.breaker_opens;
        for (const std::uint32_t shard : shards) ++next_replica[shard];
        continue;
      }
      net::ShardRemoteResult& result = out.result;
      switch (result.status) {
        case WireStatus::kOk:
          nodes_[node].breaker.on_success();
          s.scanned += result.scanned;
          s.matched += result.matched;
          s.shards_ok += shards.size();
          parts.push_back(std::move(result.hits));
          for (const std::uint32_t shard : shards) {
            pending[shard] = 0;
            --pending_count;
          }
          break;
        case WireStatus::kDeadlineExceeded: {
          // The node answered properly; the request budget ran out. Not a
          // node fault — no failover (a replica would be no faster). A
          // kCancelled, by contrast, means the NODE abandoned the scan
          // (shutdown / dying connection) — that is the default
          // (failover) case below, since the coordinator never sends a
          // cancellation over the wire.
          nodes_[node].breaker.on_success();
          if (!control.partial_ok) {
            throw DeadlineExceeded(result.message.empty()
                                       ? "cluster search deadline exceeded"
                                       : result.message);
          }
          s.deadline_exceeded = true;
          s.partial = true;
          s.scanned += result.scanned;
          s.matched += result.matched;
          s.shards_ok += shards.size();
          parts.push_back(std::move(result.hits));
          for (const std::uint32_t shard : shards) {
            pending[shard] = 0;
            --pending_count;
          }
          break;
        }
        case WireStatus::kBadRequest:
          // Protocol-level refusal (stale map, unowned shard): replicas
          // cannot heal it — surface the typed error.
          nodes_[node].breaker.on_success();
          throw ServingError(ErrorCode::kUnavailable,
                             "node '" + map_.nodes()[node].name +
                                 "' refused: " + result.message);
        default:
          // kOverloaded / kShutdown / kUnavailable / kIo...: this
          // replica can't serve right now; try the next.
          ++s.retries;
          last_error = "node '" + map_.nodes()[node].name + "' status " +
                       result.message;
          if (nodes_[node].breaker.on_failure(op_counter_)) {
            ++s.breaker_opens;
          }
          for (const std::uint32_t shard : shards) ++next_replica[shard];
          break;
      }
    }
  }

  // The scatter may have completed only after the caller's budget ran
  // out (a slow replica stalls the whole round). A strict caller's
  // deadline is a contract, not a hint — a late answer is still a miss.
  if (control.deadline_ms != 0 && elapsed_ms(t0) >= control.deadline_ms) {
    if (!control.partial_ok) {
      throw DeadlineExceeded("cluster search deadline exceeded");
    }
    s.deadline_exceeded = true;
  }

  return merge_by_id(std::move(parts));
}

void Coordinator::run_node_rpc(std::uint32_t node,
                               const std::vector<std::uint32_t>& shards,
                               const std::vector<std::uint8_t>& query_bytes,
                               std::uint64_t map_version,
                               std::uint64_t deadline_ms, bool partial_ok,
                               RpcOutcome& out) {
  NodeState& state = nodes_[node];
  const NodeInfo& info = map_.nodes()[node];
  try {
    (void)failpoint(kSiteScatter);  // kThrow fails the RPC, kDelay stalls it
    if (state.client == nullptr || !state.client->connected()) {
      auto client = std::make_unique<net::NetClient>();
      client->connect(info.host, info.port, options_.node_timeout_ms);
      const net::HelloAckMsg hello = client->hello(backend_->kind());
      if (hello.status != WireStatus::kOk) {
        throw ServingError(ErrorCode::kUnavailable,
                           "hello refused: " + hello.message);
      }
      state.client = std::move(client);
      state.authed = false;
    }
    if (!state.authed || state.session_query != query_bytes) {
      const net::AuthAckMsg ack = state.client->auth_unchecked(query_bytes);
      if (ack.status != WireStatus::kOk) {
        throw ServingError(ErrorCode::kUnavailable,
                           "auth refused: " + ack.message);
      }
      state.authed = true;
      state.session_query = query_bytes;
    }
    out.result = state.client->shard_search(
        shards, map_version, map_.total_shards(), deadline_ms, partial_ok);
    out.ok = true;
  } catch (const std::exception& ex) {
    out.error = "node '" + info.name + "': " + ex.what();
    // Drop the connection: a transport fault leaves the stream in an
    // unknown state, and the next attempt redials cleanly.
    state.client.reset();
    state.authed = false;
  }
}

}  // namespace apks::cluster
