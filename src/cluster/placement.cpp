#include "cluster/placement.h"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/bytes.h"
#include "common/crc32.h"
#include "core/backend.h"

namespace apks::cluster {

namespace {

constexpr std::array<std::uint8_t, 8> kMapMagic = {'A', 'P', 'K', 'S',
                                                   'M', 'A', 'P', '1'};

}  // namespace

std::uint64_t placement_score(std::string_view node_name,
                              std::uint32_t shard) {
  // FNV-1a over the name, then a splitmix64 finalizer folding in the
  // shard: cheap, stateless, and uniform enough that HRW spreads shards
  // evenly across a handful of nodes.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : node_name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= 0x9e3779b97f4a7c15ULL + shard;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

ClusterMap::ClusterMap(std::vector<NodeInfo> nodes,
                       std::uint32_t total_shards, std::uint32_t replicas,
                       std::uint64_t version)
    : version_(version),
      total_shards_(total_shards),
      replicas_(replicas),
      nodes_(std::move(nodes)) {
  if (nodes_.empty()) {
    throw std::invalid_argument("ClusterMap: empty node list");
  }
  if (total_shards_ == 0) {
    throw std::invalid_argument("ClusterMap: zero shards");
  }
  if (replicas_ == 0) {
    throw std::invalid_argument("ClusterMap: zero replicas");
  }
  std::unordered_set<std::string> names;
  for (const NodeInfo& node : nodes_) {
    if (node.name.empty()) {
      throw std::invalid_argument("ClusterMap: empty node name");
    }
    if (!names.insert(node.name).second) {
      throw std::invalid_argument("ClusterMap: duplicate node name '" +
                                  node.name + "'");
    }
  }
  build_placement();
}

void ClusterMap::build_placement() {
  const std::uint32_t n = static_cast<std::uint32_t>(nodes_.size());
  const std::uint32_t r = std::min(replicas_, n);
  placement_.assign(total_shards_, {});
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scored(n);
  for (std::uint32_t shard = 0; shard < total_shards_; ++shard) {
    for (std::uint32_t i = 0; i < n; ++i) {
      scored[i] = {placement_score(nodes_[i].name, shard), i};
    }
    // Best score first; a score tie (astronomically unlikely) breaks by
    // node name so placement stays a pure function of the inputs.
    std::sort(scored.begin(), scored.end(),
              [&](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return nodes_[a.second].name < nodes_[b.second].name;
              });
    std::vector<std::uint32_t>& owners = placement_[shard];
    owners.reserve(r);
    for (std::uint32_t i = 0; i < r; ++i) {
      owners.push_back(scored[i].second);
    }
  }
}

const std::vector<std::uint32_t>& ClusterMap::replicas_of(
    std::uint32_t shard) const {
  if (shard >= total_shards_) {
    throw std::out_of_range("ClusterMap: shard " + std::to_string(shard) +
                            " out of range (" +
                            std::to_string(total_shards_) + " shards)");
  }
  return placement_[shard];
}

std::vector<std::uint32_t> ClusterMap::shards_of(std::uint32_t node) const {
  std::vector<std::uint32_t> owned;
  for (std::uint32_t shard = 0; shard < total_shards_; ++shard) {
    const std::vector<std::uint32_t>& owners = placement_[shard];
    if (std::find(owners.begin(), owners.end(), node) != owners.end()) {
      owned.push_back(shard);
    }
  }
  return owned;
}

std::vector<std::uint8_t> ClusterMap::serialize() const {
  ByteWriter w;
  w.raw(std::span<const std::uint8_t>(kMapMagic.data(), kMapMagic.size()));
  ByteWriter body;
  body.u64(version_);
  body.u32(total_shards_);
  body.u32(replicas_);
  body.u32(static_cast<std::uint32_t>(nodes_.size()));
  for (const NodeInfo& node : nodes_) {
    body.str(node.name);
    body.str(node.host);
    body.u32(node.port);
  }
  w.bytes(body.data());
  w.u32(crc32(body.data()));
  return w.take();
}

ClusterMap ClusterMap::deserialize(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  const std::span<const std::uint8_t> magic = r.raw(kMapMagic.size());
  if (!std::equal(magic.begin(), magic.end(), kMapMagic.begin())) {
    throw ServingError(ErrorCode::kCorrupt, "ClusterMap: bad magic");
  }
  const std::span<const std::uint8_t> body = r.bytes();
  const std::uint32_t crc = r.u32();
  if (!r.done()) {
    throw ServingError(ErrorCode::kCorrupt, "ClusterMap: trailing bytes");
  }
  if (crc32(body) != crc) {
    throw ServingError(ErrorCode::kCorrupt, "ClusterMap: CRC mismatch");
  }
  ByteReader b(body);
  const std::uint64_t version = b.u64();
  const std::uint32_t total_shards = b.u32();
  const std::uint32_t replicas = b.u32();
  const std::uint32_t node_count = b.u32();
  // Hostile count check: every node costs at least 12 bytes (three
  // length/value fields), so a count beyond remaining/12 is a lie.
  if (node_count > b.remaining() / 12) {
    throw ServingError(ErrorCode::kCorrupt, "ClusterMap: node count");
  }
  std::vector<NodeInfo> nodes;
  nodes.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    NodeInfo node;
    node.name = b.str();
    node.host = b.str();
    const std::uint32_t port = b.u32();
    if (port > 0xffff) {
      throw std::invalid_argument("ClusterMap: port out of range");
    }
    node.port = static_cast<std::uint16_t>(port);
    nodes.push_back(std::move(node));
  }
  if (!b.done()) {
    throw ServingError(ErrorCode::kCorrupt, "ClusterMap: body trailing bytes");
  }
  return ClusterMap(std::move(nodes), total_shards, replicas, version);
}

std::vector<std::string> merge_by_id(
    std::vector<std::vector<net::ShardHit>> parts) {
  std::vector<net::ShardHit> all;
  std::size_t total = 0;
  for (const std::vector<net::ShardHit>& part : parts) total += part.size();
  all.reserve(total);
  for (std::vector<net::ShardHit>& part : parts) {
    for (net::ShardHit& hit : part) all.push_back(std::move(hit));
  }
  std::sort(all.begin(), all.end(),
            [](const net::ShardHit& a, const net::ShardHit& b) {
              return a.id < b.id;
            });
  std::vector<std::string> refs;
  refs.reserve(all.size());
  for (net::ShardHit& hit : all) refs.push_back(std::move(hit.ref));
  return refs;
}

}  // namespace apks::cluster
