// Health subsystem of the self-healing cluster tier (DESIGN.md §5j).
//
// Two pieces:
//
//   * FailureDetector — a pure consecutive-miss state machine, one per
//     node. A missed heartbeat moves the node kAlive → kSuspect after
//     `suspect_misses` consecutive misses and kSuspect → kDead after
//     `dead_misses`; any pong snaps it back to kAlive. Deliberately
//     memory-free beyond the miss counter: heartbeats are cheap and
//     frequent, so a simple consecutive count converges fast and is
//     trivially deterministic for tests.
//
//   * HealthMonitor — the coordinator-side heartbeat driver: a background
//     thread (or a manual tick() when interval_ms == 0, the deterministic
//     test mode) that keeps one dedicated v3 NetClient per node and sends
//     kPing every interval. Pongs also report the node's current
//     ClusterMap version and in-flight job count, so the monitor doubles
//     as a cheap map-agreement and load probe.
//
// The monitor never gates requests itself — it feeds the coordinator,
// which (a) orders each shard's replica set by liveness rank so suspect/
// dead nodes are tried last, and (b) force-trips the dead node's circuit
// breaker so nothing waits on a corpse before failing over. That is the
// "heal before a request fails" half of the tentpole; the breaker's own
// consecutive-failure path remains the reactive half.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/placement.h"
#include "net/client.h"

namespace apks::cluster {

enum class NodeLiveness : std::uint8_t { kAlive = 0, kSuspect = 1, kDead = 2 };

[[nodiscard]] std::string_view liveness_name(NodeLiveness liveness) noexcept;

struct FailureDetectorOptions {
  // Consecutive heartbeat misses before a node is suspected (deprioritized
  // in replica ordering) and before it is declared dead (breaker tripped).
  std::size_t suspect_misses = 1;
  std::size_t dead_misses = 3;
};

class FailureDetector {
 public:
  FailureDetector() = default;
  explicit FailureDetector(FailureDetectorOptions options)
      : options_(options) {}

  // One heartbeat answered / missed; returns the resulting liveness.
  NodeLiveness on_pong() noexcept {
    misses_ = 0;
    return NodeLiveness::kAlive;
  }
  NodeLiveness on_miss() noexcept {
    ++misses_;
    return liveness();
  }

  [[nodiscard]] NodeLiveness liveness() const noexcept {
    if (misses_ >= options_.dead_misses) return NodeLiveness::kDead;
    if (misses_ >= options_.suspect_misses) return NodeLiveness::kSuspect;
    return NodeLiveness::kAlive;
  }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  FailureDetectorOptions options_{};
  std::size_t misses_ = 0;
};

// One node's health as the monitor last saw it.
struct NodeHealthSnapshot {
  std::string name;
  NodeLiveness liveness = NodeLiveness::kAlive;
  std::size_t misses = 0;
  std::uint64_t pongs = 0;        // lifetime pongs received
  std::uint64_t map_version = 0;  // the node's map version per its last pong
  std::uint32_t inflight = 0;     // node-side job backlog per its last pong
};

struct HealthMonitorOptions {
  // Heartbeat period. 0 = no background thread; the owner drives rounds
  // explicitly with tick() — the deterministic mode every test uses.
  std::uint64_t interval_ms = 0;
  // Socket budget per ping (connect + round-trip). Must be finite: a
  // blackholed node must register as a miss, not hang the monitor.
  std::uint64_t ping_timeout_ms = 250;
  FailureDetectorOptions detector;
};

class HealthMonitor {
 public:
  // Fired after a round for every node whose liveness changed, outside the
  // monitor's lock (safe to call back into snapshot()/liveness()).
  using TransitionHook = std::function<void(
      const std::string& node, NodeLiveness from, NodeLiveness to)>;

  // `scheme` is the backend kind spoken in the hello handshake. Starts the
  // heartbeat thread unless options.interval_ms == 0.
  HealthMonitor(SchemeKind scheme, const ClusterMap& map,
                HealthMonitorOptions options = {},
                TransitionHook on_transition = {});
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Runs one heartbeat round synchronously: ping every node, feed the
  // detectors, fire transition hooks. The background thread calls exactly
  // this; tests call it directly for deterministic schedules. Must not be
  // called concurrently with itself (the background thread owns it once
  // started).
  void tick();

  // Swap in a new map (live reconfiguration): nodes are matched by NAME —
  // a surviving node keeps its detector state and its heartbeat
  // connection; added nodes start alive-with-zero-history; removed nodes
  // are forgotten. Thread-safe against a concurrent tick.
  void set_map(const ClusterMap& map);

  // Liveness by node index into the CURRENT map (kAlive for an index out
  // of range — the conservative answer while maps are swapping).
  [[nodiscard]] NodeLiveness liveness(std::uint32_t node) const;
  [[nodiscard]] std::vector<NodeHealthSnapshot> snapshot() const;
  [[nodiscard]] std::uint64_t rounds() const noexcept;

  void stop();

 private:
  struct Peer {
    NodeInfo info;
    FailureDetector detector;
    std::uint64_t pongs = 0;
    std::uint64_t map_version = 0;
    std::uint32_t inflight = 0;
  };

  void thread_main();

  SchemeKind scheme_;
  HealthMonitorOptions options_;
  TransitionHook hook_;

  mutable std::mutex mu_;  // guards peers_ and round counter
  std::vector<Peer> peers_;
  std::uint64_t rounds_ = 0;

  // Heartbeat connections, keyed by node name. Touched only by whoever
  // runs tick() (the background thread once started), never under mu_ —
  // pings must not block snapshot()/liveness() readers.
  std::vector<std::pair<std::string, std::unique_ptr<net::NetClient>>>
      clients_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace apks::cluster
