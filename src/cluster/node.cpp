#include "cluster/node.h"

#include <stdexcept>
#include <utility>

namespace apks::cluster {

ClusterNode::ClusterNode(const SearchBackend& backend,
                         CapabilityVerifier verifier, ShardedStore& store,
                         const ClusterMap& map, std::uint32_t node_index,
                         ClusterNodeOptions options)
    : backend_(&backend),
      verifier_(verifier),
      store_(&store),
      engine_options_(options.engine) {
  if (node_index >= map.nodes().size()) {
    throw std::invalid_argument("ClusterNode: node index " +
                                std::to_string(node_index) +
                                " out of range");
  }
  if (store.shard_count() != map.total_shards()) {
    throw std::invalid_argument(
        "ClusterNode: store has " + std::to_string(store.shard_count()) +
        " shards but the cluster map expects " +
        std::to_string(map.total_shards()) +
        " — the on-disk partition IS the cluster partition");
  }
  name_ = map.nodes()[node_index].name;
  map_ = map;
  state_ = build_state(map, node_index, nullptr);

  // The session backend/verifier anchor NetServer hangs onto: record-free
  // and never part of a swap, so reconfigurations can never dangle it.
  anchor_server_ = std::make_unique<CloudServer>(backend, verifier_);
  anchor_engine_ =
      std::make_unique<SearchEngine>(*anchor_server_, engine_options_);

  options.net.shard_set = std::shared_ptr<const net::ShardEngineSet>(
      state_, &state_->set);
  options.net.map_update_handler =
      [this](const std::vector<std::uint8_t>& bytes) {
        return handle_map_update(bytes);
      };
  net_ = std::make_unique<net::NetServer>(*anchor_engine_, options.net);
}

ClusterNode::~ClusterNode() {
  // Stop the server before the engines: the map-update handler captures
  // `this`, and worker jobs hold shard-set snapshots.
  if (net_ != nullptr) net_->stop(0);
}

std::shared_ptr<ClusterNode::ShardState> ClusterNode::build_state(
    const ClusterMap& map, std::uint32_t node_index, const ShardState* prev) {
  auto state = std::make_shared<ShardState>();
  state->owned = map.shards_of(node_index);

  // Reuse still-owned shards' engines (records are immutable per shard, so
  // an engine built under the old map serves the new one unchanged); mark
  // the rest for loading.
  std::vector<std::uint32_t> to_load;
  state->servers.resize(state->owned.size());
  state->engines.resize(state->owned.size());
  for (std::size_t i = 0; i < state->owned.size(); ++i) {
    bool reused = false;
    if (prev != nullptr) {
      for (std::size_t j = 0; j < prev->owned.size(); ++j) {
        if (prev->owned[j] == state->owned[i]) {
          state->servers[i] = prev->servers[j];
          state->engines[i] = prev->engines[j];
          reused = true;
          break;
        }
      }
    }
    if (!reused) {
      state->servers[i] = std::make_shared<CloudServer>(*backend_, verifier_);
      state->engines[i] =
          std::make_shared<SearchEngine>(*state->servers[i], engine_options_);
      to_load.push_back(state->owned[i]);
    }
  }

  // One streaming store pass restores every newly-assigned shard in
  // ascending-id order: for_each_record_any streams each store shard's
  // records ascending, and store shard == id % total_shards == cluster
  // shard.
  if (!to_load.empty()) {
    const std::uint64_t total = map.total_shards();
    store_->for_each_record_any([&](StoredAnyRecord&& record) {
      const std::uint32_t shard =
          static_cast<std::uint32_t>(record.id % total);
      for (const std::uint32_t wanted : to_load) {
        if (wanted != shard) continue;
        for (std::size_t i = 0; i < state->owned.size(); ++i) {
          if (state->owned[i] == shard) {
            state->servers[i]->restore_any(record.id,
                                           std::move(record.index),
                                           std::move(record.doc_ref));
            break;
          }
        }
        break;
      }
    });
  }

  state->set.map_version = map.version();
  state->set.total_shards = map.total_shards();
  for (std::size_t i = 0; i < state->owned.size(); ++i) {
    state->set.shards.emplace_back(state->owned[i], state->engines[i].get());
  }
  return state;
}

void ClusterNode::apply_map(const ClusterMap& new_map) {
  std::lock_guard apply_lk(apply_mu_);
  if (new_map.total_shards() != store_->shard_count()) {
    throw std::invalid_argument(
        "ClusterNode: map update expects " +
        std::to_string(new_map.total_shards()) + " shards but the store has " +
        std::to_string(store_->shard_count()));
  }
  std::uint32_t node_index = 0;
  bool found = false;
  for (std::size_t i = 0; i < new_map.nodes().size(); ++i) {
    if (new_map.nodes()[i].name == name_) {
      node_index = static_cast<std::uint32_t>(i);
      found = true;
      break;
    }
  }
  if (!found) {
    throw std::invalid_argument("ClusterNode: node '" + name_ +
                                "' absent from map v" +
                                std::to_string(new_map.version()));
  }
  std::shared_ptr<ShardState> prev;
  {
    std::lock_guard lk(mu_);
    if (new_map.version() <= map_.version()) {
      throw std::invalid_argument(
          "ClusterNode: map v" + std::to_string(new_map.version()) +
          " is not newer than the node's v" + std::to_string(map_.version()));
    }
    prev = state_;
  }
  // Loading happens outside mu_ (it is slow); apply_mu_ keeps concurrent
  // updates from interleaving their loads.
  std::shared_ptr<ShardState> next =
      build_state(new_map, node_index, prev.get());
  {
    std::lock_guard lk(mu_);
    map_ = new_map;
    state_ = next;
  }
  // New requests see the new placement from here on; jobs in flight keep
  // their snapshot of `prev` alive until they finish, then de-assigned
  // engines unload.
  net_->set_shard_set(
      std::shared_ptr<const net::ShardEngineSet>(next, &next->set));
}

net::MapUpdateAckMsg ClusterNode::handle_map_update(
    const std::vector<std::uint8_t>& bytes) {
  net::MapUpdateAckMsg ack;
  ClusterMap incoming;
  try {
    incoming = ClusterMap::deserialize(bytes);
  } catch (const std::exception& ex) {
    ack.status = net::WireStatus::kBadRequest;
    ack.version = map_version();
    ack.message = std::string("map rejected: ") + ex.what();
    return ack;
  }
  // Idempotent re-push of the version we already hold: fine (placement is
  // a pure function of the member list, so equal versions agree).
  if (incoming.version() == map_version()) {
    ack.version = incoming.version();
    return ack;
  }
  try {
    apply_map(incoming);
    ack.version = incoming.version();
  } catch (const std::exception& ex) {
    ack.status = net::WireStatus::kBadRequest;
    ack.version = map_version();
    ack.message = ex.what();
  }
  return ack;
}

std::uint64_t ClusterNode::map_version() const {
  std::lock_guard lk(mu_);
  return map_.version();
}

std::vector<std::uint32_t> ClusterNode::owned_shards() const {
  std::lock_guard lk(mu_);
  return state_->owned;
}

std::uint64_t ClusterNode::record_count() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& server : state_->servers) total += server->record_count();
  return total;
}

}  // namespace apks::cluster
