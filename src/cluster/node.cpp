#include "cluster/node.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace apks::cluster {

ClusterNode::ClusterNode(const SearchBackend& backend,
                         CapabilityVerifier verifier, ShardedStore& store,
                         const ClusterMap& map, std::uint32_t node_index,
                         ClusterNodeOptions options) {
  if (node_index >= map.nodes().size()) {
    throw std::invalid_argument("ClusterNode: node index " +
                                std::to_string(node_index) +
                                " out of range");
  }
  if (store.shard_count() != map.total_shards()) {
    throw std::invalid_argument(
        "ClusterNode: store has " + std::to_string(store.shard_count()) +
        " shards but the cluster map expects " +
        std::to_string(map.total_shards()) +
        " — the on-disk partition IS the cluster partition");
  }
  owned_ = map.shards_of(node_index);

  // One CloudServer per owned shard, restored in ascending-id order:
  // for_each_record_any streams each store shard's records ascending, and
  // store shard == id % total_shards == cluster shard.
  for (std::size_t i = 0; i < owned_.size(); ++i) {
    servers_.push_back(std::make_unique<CloudServer>(backend, verifier));
    engines_.push_back(
        std::make_unique<SearchEngine>(*servers_.back(), options.engine));
  }
  const std::uint64_t total = map.total_shards();
  store.for_each_record_any([&](StoredAnyRecord&& record) {
    const std::uint32_t shard =
        static_cast<std::uint32_t>(record.id % total);
    for (std::size_t i = 0; i < owned_.size(); ++i) {
      if (owned_[i] == shard) {
        servers_[i]->restore_any(record.id, std::move(record.index),
                                 std::move(record.doc_ref));
        break;
      }
    }
  });

  // A node the map assigns nothing still serves the session handshake —
  // give NetServer an empty engine to hang the backend/verifier on.
  if (engines_.empty()) {
    servers_.push_back(std::make_unique<CloudServer>(backend, verifier));
    engines_.push_back(
        std::make_unique<SearchEngine>(*servers_.back(), options.engine));
  }

  set_.map_version = map.version();
  set_.total_shards = map.total_shards();
  for (std::size_t i = 0; i < owned_.size(); ++i) {
    set_.shards.emplace_back(owned_[i], engines_[i].get());
  }
  options.net.shard_set = &set_;
  net_ = std::make_unique<net::NetServer>(*engines_.front(), options.net);
}

std::uint64_t ClusterNode::record_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < owned_.size(); ++i) {
    total += servers_[i]->record_count();
  }
  return total;
}

}  // namespace apks::cluster
