// LRU cache of server-side query preprocessing (SearchBackend::prepare
// output), keyed by the backend's query digest. Repeated queries with the
// same capability/key — the hot-key case under heavy multi-user traffic —
// skip the per-query preprocessing entirely; see SearchEngine for the
// serving layer that uses this.
//
// Entries are AnyPrepared handles (shared ownership), so an eviction never
// invalidates a prepared query a scan is still using. All operations are
// internally locked: get/put may be called from concurrent serving threads.
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/backend.h"
#include "core/capability_digest.h"

namespace apks {

class PreparedQueryCache {
 public:
  // capacity == 0 disables caching (every get misses, put is a no-op).
  explicit PreparedQueryCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the cached preprocessing, refreshing its recency, or an empty
  // handle on a miss.
  [[nodiscard]] AnyPrepared get(const QueryDigest& digest) {
    if (capacity_ == 0) {
      // Disabled cache: never holds entries, so don't take the lock on the
      // hot path — but still count the miss so the hit/miss totals stay
      // coherent with the caller's prepare_calls.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    std::lock_guard lock(mutex_);
    const auto it = map_.find(digest);
    if (it == map_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  // Inserts (or refreshes) an entry, evicting the least recently used one
  // when over capacity. Returns the shared entry for immediate use.
  AnyPrepared put(const QueryDigest& digest, AnyPrepared prepared) {
    if (capacity_ == 0) return prepared;
    std::lock_guard lock(mutex_);
    const auto it = map_.find(digest);
    if (it != map_.end()) {
      it->second->second = prepared;
      lru_.splice(lru_.begin(), lru_, it->second);
      return prepared;
    }
    lru_.emplace_front(digest, prepared);
    map_[digest] = lru_.begin();
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
    return prepared;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return map_.size();
  }
  [[nodiscard]] std::size_t hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  using Entry = std::pair<QueryDigest, AnyPrepared>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<QueryDigest, std::list<Entry>::iterator,
                     CapabilityDigestHash>
      map_;
  // Atomic so the capacity-0 fast path can count misses without the lock.
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
};

}  // namespace apks
