// LRU cache of server-side capability preprocessing (Apks::prepare output),
// keyed by the capability digest. Repeated queries with the same capability
// — the hot-key case under heavy multi-user traffic — skip the per-query
// preprocessing entirely; see SearchEngine for the serving layer that uses
// this.
//
// Entries are handed out as shared_ptr so an eviction never invalidates a
// prepared capability a scan is still using. All operations are internally
// locked: get/put may be called from concurrent serving threads.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/capability_digest.h"

namespace apks {

class PreparedCapabilityCache {
 public:
  // capacity == 0 disables caching (every get misses, put is a no-op).
  explicit PreparedCapabilityCache(std::size_t capacity)
      : capacity_(capacity) {}

  // Returns the cached preprocessing, refreshing its recency, or nullptr.
  [[nodiscard]] std::shared_ptr<const PreparedCapability> get(
      const CapabilityDigest& digest) {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(digest);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->second;
  }

  // Inserts (or refreshes) an entry, evicting the least recently used one
  // when over capacity. Returns the shared entry for immediate use.
  std::shared_ptr<const PreparedCapability> put(
      const CapabilityDigest& digest, PreparedCapability prepared) {
    auto entry =
        std::make_shared<const PreparedCapability>(std::move(prepared));
    if (capacity_ == 0) return entry;
    std::lock_guard lock(mutex_);
    const auto it = map_.find(digest);
    if (it != map_.end()) {
      it->second->second = entry;
      lru_.splice(lru_.begin(), lru_, it->second);
      return entry;
    }
    lru_.emplace_front(digest, entry);
    map_[digest] = lru_.begin();
    if (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
    }
    return entry;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return map_.size();
  }
  [[nodiscard]] std::size_t hits() const {
    std::lock_guard lock(mutex_);
    return hits_;
  }
  [[nodiscard]] std::size_t misses() const {
    std::lock_guard lock(mutex_);
    return misses_;
  }

 private:
  using Entry =
      std::pair<CapabilityDigest, std::shared_ptr<const PreparedCapability>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CapabilityDigest, std::list<Entry>::iterator,
                     CapabilityDigestHash>
      map_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace apks
