#include "cloud/verdict_cache.h"

#include <algorithm>
#include <utility>

namespace apks {

std::shared_ptr<const VerdictCache::MatchedIds> VerdictCache::get(
    const QueryDigest& digest, const SegmentId& segment) {
  if (budget_ == 0) return nullptr;  // disabled: no lock, no stats
  std::lock_guard lock(mutex_);
  const auto it = map_.find(Key{digest, segment});
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->ids;
}

void VerdictCache::put(const QueryDigest& digest, const SegmentId& segment,
                       MatchedIds ids) {
  if (budget_ == 0) return;
  const std::uint64_t cost = cost_of(ids);
  if (cost > budget_) return;  // would evict everything and still not fit
  auto shared = std::make_shared<const MatchedIds>(std::move(ids));
  std::lock_guard lock(mutex_);
  const Key key{digest, segment};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Refresh in place (same sealed segment + same query can only produce
    // the same verdict; this path exists for idempotent re-population).
    bytes_ -= it->second->cost;
    it->second->ids = std::move(shared);
    it->second->cost = cost;
    bytes_ += cost;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(shared), cost});
  map_.emplace(key, lru_.begin());
  bytes_ += cost;
  ++stats_.insertions;
  while (bytes_ > budget_ && !lru_.empty()) {
    ++stats_.evictions;
    erase_locked(std::prev(lru_.end()));
  }
}

void VerdictCache::invalidate(std::span<const SegmentId> segments) {
  if (budget_ == 0 || segments.empty()) return;
  std::lock_guard lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    const auto next = std::next(it);
    const bool retired =
        std::find(segments.begin(), segments.end(), it->key.segment) !=
        segments.end();
    if (retired) {
      ++stats_.invalidated;
      erase_locked(it);
    }
    it = next;
  }
}

void VerdictCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
}

VerdictCacheStats VerdictCache::stats() const {
  std::lock_guard lock(mutex_);
  VerdictCacheStats out = stats_;
  out.entries = map_.size();
  out.bytes = bytes_;
  return out;
}

void VerdictCache::erase_locked(std::list<Entry>::iterator it) {
  bytes_ -= it->cost;
  map_.erase(it->key);
  lru_.erase(it);
}

}  // namespace apks
