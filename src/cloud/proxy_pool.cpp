#include "cloud/proxy_pool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace apks {
namespace {

// Same deterministic stream generator the failpoint framework uses: the
// backoff jitter must replay exactly under a fixed seed.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::string replica_site(std::size_t share, std::size_t replica) {
  return "proxy.s" + std::to_string(share) + ".r" + std::to_string(replica);
}

}  // namespace

ResilientProxyPipeline::ResilientProxyPipeline(const ApksPlus& scheme,
                                               const std::vector<Fq>& shares,
                                               ProxyPoolOptions options)
    : scheme_(&scheme),
      options_(options),
      jitter_state_(options.jitter_seed ^ 0x6a09e667f3bcc908ULL) {
  if (shares.empty()) {
    throw std::invalid_argument("ResilientProxyPipeline: no shares");
  }
  if (options_.replicas == 0) options_.replicas = 1;
  if (options_.attempts_per_replica == 0) options_.attempts_per_replica = 1;
  const BreakerOptions breaker{.threshold = options_.breaker_threshold,
                               .cooldown_ops = options_.breaker_cooldown_ops};
  shares_.resize(shares.size());
  for (std::size_t si = 0; si < shares.size(); ++si) {
    shares_[si].replicas.reserve(options_.replicas);
    for (std::size_t ri = 0; ri < options_.replicas; ++ri) {
      shares_[si].replicas.emplace_back(scheme, shares[si],
                                        options_.rate_limit,
                                        replica_site(si, ri), breaker);
    }
  }
}

void ResilientProxyPipeline::backoff_locked(std::size_t failures_so_far) {
  if (options_.backoff_base_ms == 0 || failures_so_far == 0) return;
  const unsigned shift =
      failures_so_far > 16 ? 16U : static_cast<unsigned>(failures_so_far - 1);
  std::uint64_t ms = static_cast<std::uint64_t>(options_.backoff_base_ms)
                     << shift;
  ms = std::min<std::uint64_t>(ms, options_.backoff_max_ms);
  // Deterministic jitter in [ms/2, ms] — decorrelates replicas retrying
  // against a shared dependency without losing replayability.
  if (ms > 1) ms = ms / 2 + splitmix64(jitter_state_) % (ms / 2 + 1);
  if (ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool ResilientProxyPipeline::apply_share_locked(std::size_t si,
                                                EncryptedIndex& cur,
                                                std::size_t* served_replica) {
  Share& share = shares_[si];
  std::size_t failures = 0;
  std::size_t last_tried = static_cast<std::size_t>(-1);
  for (std::size_t round = 0; round < options_.attempts_per_replica; ++round) {
    for (std::size_t ri = 0; ri < share.replicas.size(); ++ri) {
      Replica& rep = share.replicas[ri];
      switch (rep.breaker.admit(op_counter_)) {
        case CircuitBreaker::Gate::kSkip:
          continue;  // still cooling down
        case CircuitBreaker::Gate::kProbe:
          ++stats_.breaker_probes;  // half-open probe
          break;
        case CircuitBreaker::Gate::kClosed:
          break;
      }
      if (last_tried != static_cast<std::size_t>(-1) && last_tried != ri) {
        ++stats_.failovers;
      }
      last_tried = ri;
      try {
        EncryptedIndex out = rep.proxy.transform(cur);
        ++rep.successes;
        rep.breaker.on_success();
        cur = std::move(out);
        if (served_replica != nullptr) *served_replica = ri;
        return true;
      } catch (const std::exception&) {
        ++rep.failures;
        ++stats_.retries;
        ++failures;
        if (rep.breaker.on_failure(op_counter_)) ++stats_.breaker_opens;
        backoff_locked(failures);
      }
    }
  }
  return false;
}

std::vector<std::size_t> ResilientProxyPipeline::apply_all_locked(
    EncryptedIndex& cur, std::vector<char>& applied,
    std::vector<std::pair<std::size_t, std::size_t>>* served) {
  // Shares commute, so a failing share never blocks the later ones: apply
  // everything that can make progress and report only what remains.
  std::vector<std::size_t> pending;
  for (std::size_t si = 0; si < shares_.size(); ++si) {
    if (applied[si] != 0) continue;
    std::size_t ri = 0;
    if (apply_share_locked(si, cur, &ri)) {
      applied[si] = 1;
      if (served != nullptr) served->emplace_back(si, ri);
    } else {
      pending.push_back(si);
    }
  }
  return pending;
}

std::optional<EncryptedIndex> ResilientProxyPipeline::process(
    const EncryptedIndex& partial, std::string tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++op_counter_;
  EncryptedIndex cur = partial;
  std::vector<char> applied(shares_.size(), 0);
  const std::vector<std::size_t> pending =
      apply_all_locked(cur, applied, nullptr);
  if (pending.empty()) {
    ++stats_.transformed;
    return cur;
  }
  if (parked_.size() >= options_.parking_capacity) {
    ++stats_.rejected;
    throw ProxyUnavailable(
        pending.front(),
        "proxy pool: share " + std::to_string(pending.front()) +
            " has no live replica and the parking queue is full (" +
            std::to_string(parked_.size()) + "/" +
            std::to_string(options_.parking_capacity) + ")");
  }
  parked_.push_back({std::move(tag), std::move(cur), std::move(applied)});
  ++stats_.parked;
  return std::nullopt;
}

EncryptedIndex ResilientProxyPipeline::process_strict(
    const EncryptedIndex& partial) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++op_counter_;
  EncryptedIndex cur = partial;
  std::vector<char> applied(shares_.size(), 0);
  std::vector<std::pair<std::size_t, std::size_t>> served;
  const std::vector<std::size_t> pending =
      apply_all_locked(cur, applied, &served);
  if (pending.empty()) {
    ++stats_.transformed;
    return cur;
  }
  // The upload is the unit of charging (same rule as ProxyPipeline): the
  // shares that did transform give their budget back before the typed
  // failure propagates to CloudServer::store's caller.
  for (const auto& [si, ri] : served) {
    shares_[si].replicas[ri].proxy.refund();
  }
  throw ProxyUnavailable(
      pending.front(),
      "proxy pool: share " + std::to_string(pending.front()) +
          " has no live replica (strict ingest path cannot park)");
}

std::size_t ResilientProxyPipeline::drain(
    const std::function<void(const std::string& tag,
                             EncryptedIndex transformed)>& sink) {
  std::vector<std::pair<std::string, EncryptedIndex>> done;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = parked_.begin(); it != parked_.end();) {
      ++op_counter_;
      const std::vector<std::size_t> pending =
          apply_all_locked(it->partial, it->applied, nullptr);
      if (pending.empty()) {
        ++stats_.transformed;
        ++stats_.drained;
        done.emplace_back(std::move(it->tag), std::move(it->partial));
        it = parked_.erase(it);
      } else {
        ++it;  // still blocked; progress (if any) stays in it->applied
      }
    }
  }
  // The sink runs outside the lock: it typically appends to a store and
  // may re-enter the pool (e.g. stats()) from its own call chain.
  for (auto& [tag, index] : done) {
    if (sink) sink(tag, std::move(index));
  }
  return done.size();
}

std::size_t ResilientProxyPipeline::parked_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return parked_.size();
}

ProxyPoolStats ResilientProxyPipeline::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<ProxyReplicaHealth> ResilientProxyPipeline::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProxyReplicaHealth> out;
  out.reserve(shares_.size() * options_.replicas);
  for (std::size_t si = 0; si < shares_.size(); ++si) {
    for (std::size_t ri = 0; ri < shares_[si].replicas.size(); ++ri) {
      const Replica& rep = shares_[si].replicas[ri];
      out.push_back({si, ri, rep.successes, rep.failures,
                     rep.breaker.consecutive_failures(),
                     rep.breaker.open_now(op_counter_)});
    }
  }
  return out;
}

ResilientProxyPipeline make_resilient_pipeline(const ApksPlus& scheme,
                                               const Fq& r, std::size_t shares,
                                               Rng& rng,
                                               ProxyPoolOptions options) {
  return ResilientProxyPipeline(
      scheme,
      HpePlus::split_secret(scheme.hpe().pairing().fq(), r, shares, rng),
      options);
}

}  // namespace apks
