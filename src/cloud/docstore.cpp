#include "cloud/docstore.h"

#include <stdexcept>

#include "common/bytes.h"
#include "store/segment.h"

namespace apks {

// Blob frame payload: [str doc_ref] [raw nonce] [bytes sealed].
void DocumentStore::persist(const std::filesystem::path& file) const {
  std::shared_lock lock(mutex_);
  SegmentWriter w(file, /*shard_id=*/0, /*seq=*/1);
  for (const auto& [doc_ref, blob] : blobs_) {
    ByteWriter payload;
    payload.str(doc_ref);
    payload.raw(blob.nonce);
    payload.bytes(blob.sealed);
    w.append(payload.data());
  }
  w.sync();
}

std::size_t DocumentStore::load(const std::filesystem::path& file) {
  std::map<std::string, Blob> loaded;
  const SegmentScanResult scan =
      scan_segment(file, [&](std::span<const std::uint8_t> payload) {
        ByteReader r(payload);
        const std::string doc_ref = r.str();
        Blob blob;
        const auto nonce = r.raw(blob.nonce.size());
        std::copy(nonce.begin(), nonce.end(), blob.nonce.begin());
        const auto sealed = r.bytes();
        blob.sealed.assign(sealed.begin(), sealed.end());
        if (!r.done()) {
          throw std::runtime_error("document blob: trailing bytes");
        }
        loaded[doc_ref] = std::move(blob);
      });
  if (scan.torn_tail()) {
    // Fully-committed blobs before the tear are kept — same recovery rule
    // as the index store's active segment.
    std::filesystem::resize_file(file, scan.valid_bytes);
  }
  std::unique_lock lock(mutex_);
  blobs_ = std::move(loaded);
  return blobs_.size();
}

}  // namespace apks
