// Per-segment verdict memoization for hot queries (the ROADMAP's
// "(query digest × segment) → verdict" cache — the single biggest lever
// for heavy read traffic).
//
// Search is pairing-bound: every repeated hot-keyword query re-pays a full
// pairing match per record even though a sealed segment's record set is
// immutable. This cache remembers, per (QueryDigest, SegmentId), exactly
// which record ids of that sealed segment matched — including the empty
// set (negative caching: "nothing in this segment matches" is the common
// verdict and exactly as valuable). A later batch with the same query
// answers every record of a memoized segment with one binary search
// instead of one pairing product.
//
// Correctness leans on three invariants, enforced by the layers around it:
//  - Keys are durable segment identities (store/index_store.h SegmentId:
//    store uid + shard + seq + seal epoch). Sealed record sets are
//    immutable and two distinct sealed sets never share a SegmentId, so a
//    cached verdict can never be served for different bytes than it was
//    computed from.
//  - Only *sealed* segments are memoized. The active tail is mutable and
//    always scanned live (SearchEngine tags its records with no segment).
//  - Only *complete* scans populate. A partial (deadline/cancelled) scan
//    has holes in its hit matrix; SearchEngine skips population unless the
//    batch ran to the end of the store.
// Invalidation (rotation/compaction hooks) is therefore memory hygiene,
// not a correctness requirement: retired ids are simply never probed
// again once the server reloads.
//
// Bounded by a byte budget (entry overhead + 8 bytes per matched id),
// LRU-evicted, internally locked; get() returns shared ownership so an
// eviction never invalidates a verdict a scan is still applying.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/capability_digest.h"
#include "store/index_store.h"

namespace apks {

struct VerdictCacheStats {
  std::uint64_t hits = 0;         // get() found a verdict
  std::uint64_t misses = 0;       // get() found nothing
  std::uint64_t insertions = 0;   // put() stored a new verdict
  std::uint64_t evictions = 0;    // entries dropped for the byte budget
  std::uint64_t invalidated = 0;  // entries dropped by segment retirement
  std::size_t entries = 0;        // current entry count
  std::uint64_t bytes = 0;        // current charged bytes
};

class VerdictCache {
 public:
  // Matched record ids of one segment under one query, ascending (records
  // stream in ascending-id order). An empty vector is a cached negative.
  using MatchedIds = std::vector<std::uint64_t>;

  // byte_budget == 0 disables the cache (get always misses, put drops).
  explicit VerdictCache(std::uint64_t byte_budget) : budget_(byte_budget) {}

  [[nodiscard]] bool enabled() const noexcept { return budget_ != 0; }
  [[nodiscard]] std::uint64_t byte_budget() const noexcept { return budget_; }

  // The memoized verdict for (digest, segment), refreshing its recency, or
  // nullptr on a miss. The returned vector is immutable and shared — safe
  // to keep across a concurrent eviction/invalidation.
  [[nodiscard]] std::shared_ptr<const MatchedIds> get(
      const QueryDigest& digest, const SegmentId& segment);

  // Memoizes a complete scan's verdict for one sealed segment, evicting
  // LRU entries past the byte budget. An entry larger than the whole
  // budget is not stored. Callers must only pass verdicts from complete
  // (non-partial, non-cancelled) scans of sealed segments.
  void put(const QueryDigest& digest, const SegmentId& segment,
           MatchedIds ids);

  // Drops every verdict cached under the given segment identities (the
  // rotation/compaction invalidation hook target).
  void invalidate(std::span<const SegmentId> segments);

  void clear();

  [[nodiscard]] VerdictCacheStats stats() const;

 private:
  struct Key {
    QueryDigest digest;
    SegmentId segment;
    [[nodiscard]] bool operator==(const Key& o) const noexcept {
      return segment == o.segment && digest == o.digest;
    }
  };
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const Key& k) const noexcept {
      // The digest is already uniform; fold the segment identity in.
      std::size_t h = CapabilityDigestHash{}(k.digest);
      h ^= SegmentIdHash{}(k.segment) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return h;
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const MatchedIds> ids;
    std::uint64_t cost = 0;  // charged bytes
  };

  // Bookkeeping cost per entry: key + list/map node overhead, amortized.
  static constexpr std::uint64_t kEntryOverhead = 128;

  [[nodiscard]] static std::uint64_t cost_of(const MatchedIds& ids) noexcept {
    return kEntryOverhead + static_cast<std::uint64_t>(ids.size()) * 8;
  }
  void erase_locked(std::list<Entry>::iterator it);

  const std::uint64_t budget_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  std::uint64_t bytes_ = 0;
  VerdictCacheStats stats_;
};

}  // namespace apks
