// ResilientProxyPipeline — the fault-tolerant APKS+ proxy deployment.
//
// The paper's Section V splits the TA secret r = r_1 r_2 ... r_P across P
// semi-trusted proxies, which makes every proxy a single point of failure
// for ingest: one dead proxy (or one exhausted rate budget) and no upload
// can ever complete. This pool removes the single point of failure while
// preserving the scheme's security split:
//
//   - every share r_i is held by R *replicas* (replicating a share reveals
//     nothing new — each replica of share i stores the same r_i^{-1}, and
//     compromising replicas of a proper subset of shares still reveals
//     nothing about r);
//   - an upload applies each pending share by trying that share's replicas
//     in health order, retrying with exponential backoff + deterministic
//     jitter and failing over between replicas;
//   - a replica that keeps failing trips a per-replica circuit breaker:
//     it is skipped for a cooldown window (measured in pipeline operations
//     — the in-process stand-in for wall-clock cooldowns) and then probed
//     half-open;
//   - when *no* replica of some share is live, the upload is *parked*: the
//     partially-transformed ciphertext and the set of shares already
//     applied go into a bounded parking queue (progress is never thrown
//     away — shares commute, so the remaining shares can be applied in any
//     later order), and drain() completes parked uploads once replicas
//     recover. A full queue rejects with a typed ProxyUnavailable.
//
// Charging: each replica's rate budget is charged on success only. Parked
// progress stays charged (the transformations really happened and are
// retained in the parked ciphertext); the *strict* path — the backend
// ingest hook, which cannot park because CloudServer::store must return a
// record id synchronously — refunds the shares it already applied before
// rethrowing, so a retried upload is not double-billed (same rule as
// ProxyPipeline).
//
// Failures are injected through each replica's failpoint site
// ("proxy.s<share>.r<replica>", see common/failpoint.h) or arise naturally
// from exhausted rate budgets. All decisions (replica order, backoff
// jitter) are deterministic given the options' jitter_seed, so chaos
// schedules replay exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "cloud/proxy.h"
#include "common/breaker.h"

namespace apks {

struct ProxyPoolOptions {
  // Replicas per share; every replica of share i holds the same r_i.
  std::size_t replicas = 2;
  // Transformation attempts per replica per operation before failing over.
  std::size_t attempts_per_replica = 1;
  // Exponential backoff between attempts: min(base << failures, max), with
  // up to 50% deterministic jitter. base 0 disables sleeping (tests).
  std::uint32_t backoff_base_ms = 0;
  std::uint32_t backoff_max_ms = 50;
  // Consecutive failures that trip a replica's circuit breaker, and how
  // many pipeline operations the breaker stays open before a half-open
  // probe. threshold 0 disables the breaker.
  std::size_t breaker_threshold = 3;
  std::uint64_t breaker_cooldown_ops = 4;
  // Bounded parking queue; a park beyond capacity throws ProxyUnavailable.
  std::size_t parking_capacity = 64;
  // Per-replica rate budget (0 = unlimited), as in ProxyServer.
  std::size_t rate_limit = 0;
  // Seed for the deterministic jitter stream.
  std::uint64_t jitter_seed = 42;
};

struct ProxyReplicaHealth {
  std::size_t share = 0;
  std::size_t replica = 0;
  std::size_t successes = 0;
  std::size_t failures = 0;
  std::size_t consecutive_failures = 0;
  bool breaker_open = false;
};

struct ProxyPoolStats {
  std::size_t transformed = 0;  // uploads fully transformed (incl. drained)
  std::size_t parked = 0;       // uploads that entered the parking queue
  std::size_t drained = 0;      // parked uploads later completed
  std::size_t rejected = 0;     // parks refused: queue full
  std::size_t retries = 0;      // failed share-application attempts
  std::size_t failovers = 0;    // replica switches after a failure
  std::size_t breaker_opens = 0;
  std::size_t breaker_probes = 0;  // half-open probe attempts
};

class ResilientProxyPipeline {
 public:
  // `shares[i]` is r_i (r = prod shares); each is replicated
  // options.replicas times. Replica failpoint sites: "proxy.s<i>.r<j>".
  ResilientProxyPipeline(const ApksPlus& scheme,
                         const std::vector<Fq>& shares,
                         ProxyPoolOptions options = {});

  // Applies every share of r to `partial`, failing over between replicas.
  // Returns the fully transformed ciphertext, or std::nullopt after
  // parking the upload under `tag` (some share had no live replica; the
  // shares that did succeed are retained in the parked ciphertext). Throws
  // ProxyUnavailable when the upload would park but the queue is full.
  [[nodiscard]] std::optional<EncryptedIndex> process(
      const EncryptedIndex& partial, std::string tag);

  // Synchronous variant for the backend ingest hook (CloudServer::store
  // must return an id, so parking is not an option): same failover, but a
  // share with no live replica refunds the shares already applied and
  // throws ProxyUnavailable.
  [[nodiscard]] EncryptedIndex process_strict(const EncryptedIndex& partial);

  // Retries every parked upload; each one that now completes is handed to
  // `sink(tag, transformed)` and leaves the queue (still-blocked uploads
  // stay parked). Returns the number completed.
  std::size_t drain(
      const std::function<void(const std::string& tag,
                               EncryptedIndex transformed)>& sink);

  [[nodiscard]] std::size_t share_count() const noexcept {
    return shares_.size();
  }
  [[nodiscard]] std::size_t replica_count() const noexcept {
    return options_.replicas;
  }
  [[nodiscard]] std::size_t parked_count() const;
  [[nodiscard]] ProxyPoolStats stats() const;
  [[nodiscard]] std::vector<ProxyReplicaHealth> health() const;

 private:
  struct Replica {
    Replica(const ApksPlus& scheme, const Fq& share, std::size_t rate_limit,
            std::string site, BreakerOptions breaker_options)
        : proxy(scheme, share, rate_limit, std::move(site)),
          breaker(breaker_options) {}
    ProxyServer proxy;
    std::size_t successes = 0;
    std::size_t failures = 0;
    CircuitBreaker breaker;  // cooldowns measured in op_counter_ ticks
  };
  struct Share {
    std::vector<Replica> replicas;
  };
  struct ParkedUpload {
    std::string tag;
    EncryptedIndex partial;
    std::vector<char> applied;  // applied[i]: share i already transformed
  };

  // Tries to apply share `si` to `cur` (caller holds mutex_). On success
  // records the replica that served it in `*served_replica`. Returns false
  // when every replica is down/exhausted.
  bool apply_share_locked(std::size_t si, EncryptedIndex& cur,
                          std::size_t* served_replica);
  // Applies every unapplied share; returns indexes of shares still
  // pending. `served` (optional) collects (share, replica) pairs that
  // succeeded — process_strict refunds them on failure.
  std::vector<std::size_t> apply_all_locked(
      EncryptedIndex& cur, std::vector<char>& applied,
      std::vector<std::pair<std::size_t, std::size_t>>* served);
  void backoff_locked(std::size_t failures_so_far);

  const ApksPlus* scheme_;
  ProxyPoolOptions options_;
  mutable std::mutex mutex_;
  std::vector<Share> shares_;
  std::deque<ParkedUpload> parked_;
  ProxyPoolStats stats_;
  std::uint64_t op_counter_ = 0;
  std::uint64_t jitter_state_;
};

// Deployment wiring: split r into `shares` multiplicative shares and stand
// up a replicated pool over them.
[[nodiscard]] ResilientProxyPipeline make_resilient_pipeline(
    const ApksPlus& scheme, const Fq& r, std::size_t shares, Rng& rng,
    ProxyPoolOptions options = {});

// Installs the pool as the backend's synchronous ingest stage (strict
// path: no parking — see process_strict). The pool must outlive the
// backend's use.
inline void attach_ingest_pipeline(ApksPlusBackend& backend,
                                   ResilientProxyPipeline& pool) {
  backend.set_ingest_stage([&pool](const EncryptedIndex& partial) {
    return pool.process_strict(partial);
  });
}

}  // namespace apks
