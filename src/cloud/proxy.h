// Semi-trusted proxy servers for APKS+ (Section V, Fig. 6).
//
// Each proxy holds one multiplicative share of the TA's secret r and
// rescales partially-encrypted indexes on the owners' behalf. With P > 1
// proxies a ciphertext must traverse all of them before the cloud server
// will ever match it; compromising any proper subset reveals nothing about
// r. Proxies also rate-limit transformations as the paper's (coarse)
// defence against probe-response attacks.
//
// Charging rule: a proxy's rate budget counts *successful* transformations
// only, and the unit of charging is the whole chain — if a later proxy
// fails mid-chain, ProxyPipeline refunds the proxies that already ran, so
// a retry of the same upload is not double-billed. (The replicated,
// fault-tolerant deployment lives in cloud/proxy_pool.h.)
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/apks_backend.h"
#include "core/apks_plus.h"

namespace apks {

class ProxyServer {
 public:
  // `share` is this proxy's share r_i of r = r_1 ... r_P; the proxy stores
  // and applies r_i^{-1}. `site` names this proxy's failpoint (chaos tests
  // kill or degrade individual proxies by arming it).
  ProxyServer(const ApksPlus& scheme, const Fq& share,
              std::size_t rate_limit = 0,
              std::string site = "proxy.transform")
      : scheme_(&scheme),
        inv_share_(scheme.hpe().pairing().fq().inv(share)),
        rate_limit_(rate_limit),
        site_(std::move(site)) {}

  [[nodiscard]] EncryptedIndex transform(const EncryptedIndex& partial) {
    if (rate_limit_ != 0 && transformed_ >= rate_limit_) {
      throw ServingError(
          ErrorCode::kExhausted,
          "proxy: transformation budget exhausted (probe-response defence)");
    }
    (void)failpoint(site_);  // armed `throw` = dead/flaky proxy
    EncryptedIndex out = scheme_->proxy_transform(inv_share_, partial);
    ++transformed_;  // charge on success only
    return out;
  }

  // Returns one successful transformation to the budget (the chain it was
  // part of failed downstream and will be retried as a whole).
  void refund() noexcept {
    if (transformed_ > 0) --transformed_;
  }

  [[nodiscard]] std::size_t transformed_count() const noexcept {
    return transformed_;
  }
  [[nodiscard]] std::size_t rate_limit() const noexcept { return rate_limit_; }
  [[nodiscard]] const std::string& site() const noexcept { return site_; }

 private:
  const ApksPlus* scheme_;
  Fq inv_share_;
  std::size_t rate_limit_;  // 0 = unlimited
  std::string site_;
  std::size_t transformed_ = 0;
};

// A chain of proxies every upload must traverse (any order works: the
// shares commute).
class ProxyPipeline {
 public:
  void add(ProxyServer proxy) { proxies_.push_back(std::move(proxy)); }

  [[nodiscard]] std::size_t size() const noexcept { return proxies_.size(); }
  [[nodiscard]] ProxyServer& proxy(std::size_t i) { return proxies_.at(i); }
  [[nodiscard]] const ProxyServer& proxy(std::size_t i) const {
    return proxies_.at(i);
  }

  [[nodiscard]] EncryptedIndex process(EncryptedIndex partial) {
    for (std::size_t i = 0; i < proxies_.size(); ++i) {
      try {
        partial = proxies_[i].transform(partial);
      } catch (...) {
        // The chain is the unit of charging: a mid-chain failure means the
        // upload never completes, so the proxies that already transformed
        // it get their budget back (the retry will charge them again).
        for (std::size_t j = 0; j < i; ++j) proxies_[j].refund();
        throw;
      }
    }
    return partial;
  }

 private:
  std::vector<ProxyServer> proxies_;
};

// Installs the pipeline as the backend's ingest stage, making the proxy
// chain part of the unified serving path: every index handed to
// CloudServer::store traverses all P proxies (rate limits included) before
// validate_ingest and persistence, instead of owners calling
// pipeline.process as a separate side door. The pipeline must outlive the
// backend's use; transformations are counted against each proxy's budget.
inline void attach_ingest_pipeline(ApksPlusBackend& backend,
                                   ProxyPipeline& pipeline) {
  backend.set_ingest_stage([&pipeline](const EncryptedIndex& partial) {
    return pipeline.process(partial);
  });
}

// Convenience wiring for a full APKS+ deployment: TA secret split across P
// proxies, ready for owners to push partial indexes through.
[[nodiscard]] inline ProxyPipeline make_proxy_pipeline(const ApksPlus& scheme,
                                                       const Fq& r,
                                                       std::size_t proxies,
                                                       Rng& rng,
                                                       std::size_t rate_limit =
                                                           0) {
  ProxyPipeline pipeline;
  std::size_t i = 0;
  for (const auto& share : HpePlus::split_secret(
           scheme.hpe().pairing().fq(), r, proxies, rng)) {
    pipeline.add(ProxyServer(scheme, share, rate_limit,
                             "proxy.p" + std::to_string(i++)));
  }
  return pipeline;
}

}  // namespace apks
