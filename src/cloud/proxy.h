// Semi-trusted proxy servers for APKS+ (Section V, Fig. 6).
//
// Each proxy holds one multiplicative share of the TA's secret r and
// rescales partially-encrypted indexes on the owners' behalf. With P > 1
// proxies a ciphertext must traverse all of them before the cloud server
// will ever match it; compromising any proper subset reveals nothing about
// r. Proxies also rate-limit transformations as the paper's (coarse)
// defence against probe-response attacks.
#pragma once

#include <stdexcept>
#include <vector>

#include "core/apks_backend.h"
#include "core/apks_plus.h"

namespace apks {

class ProxyServer {
 public:
  // `share` is this proxy's share r_i of r = r_1 ... r_P; the proxy stores
  // and applies r_i^{-1}.
  ProxyServer(const ApksPlus& scheme, const Fq& share,
              std::size_t rate_limit = 0)
      : scheme_(&scheme),
        inv_share_(scheme.hpe().pairing().fq().inv(share)),
        rate_limit_(rate_limit) {}

  [[nodiscard]] EncryptedIndex transform(const EncryptedIndex& partial) {
    if (rate_limit_ != 0 && transformed_ >= rate_limit_) {
      throw std::runtime_error(
          "proxy: transformation budget exhausted (probe-response defence)");
    }
    ++transformed_;
    return scheme_->proxy_transform(inv_share_, partial);
  }

  [[nodiscard]] std::size_t transformed_count() const noexcept {
    return transformed_;
  }

 private:
  const ApksPlus* scheme_;
  Fq inv_share_;
  std::size_t rate_limit_;  // 0 = unlimited
  std::size_t transformed_ = 0;
};

// A chain of proxies every upload must traverse (any order works: the
// shares commute).
class ProxyPipeline {
 public:
  void add(ProxyServer proxy) { proxies_.push_back(std::move(proxy)); }

  [[nodiscard]] std::size_t size() const noexcept { return proxies_.size(); }

  [[nodiscard]] EncryptedIndex process(EncryptedIndex partial) {
    for (auto& proxy : proxies_) {
      partial = proxy.transform(partial);
    }
    return partial;
  }

 private:
  std::vector<ProxyServer> proxies_;
};

// Installs the pipeline as the backend's ingest stage, making the proxy
// chain part of the unified serving path: every index handed to
// CloudServer::store traverses all P proxies (rate limits included) before
// validate_ingest and persistence, instead of owners calling
// pipeline.process as a separate side door. The pipeline must outlive the
// backend's use; transformations are counted against each proxy's budget.
inline void attach_ingest_pipeline(ApksPlusBackend& backend,
                                   ProxyPipeline& pipeline) {
  backend.set_ingest_stage([&pipeline](const EncryptedIndex& partial) {
    return pipeline.process(partial);
  });
}

// Convenience wiring for a full APKS+ deployment: TA secret split across P
// proxies, ready for owners to push partial indexes through.
[[nodiscard]] inline ProxyPipeline make_proxy_pipeline(const ApksPlus& scheme,
                                                       const Fq& r,
                                                       std::size_t proxies,
                                                       Rng& rng,
                                                       std::size_t rate_limit =
                                                           0) {
  ProxyPipeline pipeline;
  for (const auto& share : HpePlus::split_secret(
           scheme.hpe().pairing().fq(), r, proxies, rng)) {
    pipeline.add(ProxyServer(scheme, share, rate_limit));
  }
  return pipeline;
}

}  // namespace apks
