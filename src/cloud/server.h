// The honest-but-curious cloud server of the system model (Fig. 1 / Fig. 6).
//
// Stores encrypted indexes contributed by multiple owners and serves
// searches: it verifies the query's authority signature, preprocesses the
// query's pairing argument once, then scans the whole database (searchable
// encryption reveals nothing that would allow sub-linear filtering).
// Returns the document references of matching records.
//
// The server is scheme-agnostic: all crypto goes through a SearchBackend
// (core/backend.h), so the same store -> prepare -> match -> stats path
// serves APKS, APKS+ (whose proxy transformation chain rides the backend's
// ingest hooks) and the MRQED^D comparison baseline. The APKS-typed entry
// points below are thin wrappers kept for the basic deployment and the
// existing tests/benches; they require an APKS-family backend.
//
// Concurrency contract: `store` is a writer and may run concurrently with
// any number of searches — the record store is guarded by a shared_mutex
// (searches hold it shared for the whole scan, including the worker threads
// of the parallel paths, so a scan always sees a consistent snapshot).
// Batched multi-query serving lives in SearchEngine (search_engine.h).
//
// API naming rule: every public search entry point that skips the
// authority-signature check carries "unchecked" in its name. The unchecked
// variants exist for benchmarks (timing the cryptographic scan in
// isolation) and for deployments that check authorization out of band —
// production callers use the SignedCapability/SignedQuery overloads.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "auth/authority.h"
#include "core/apks.h"
#include "core/apks_backend.h"
#include "core/backend.h"
#include "store/sharded_store.h"

namespace apks {

class SearchEngine;

// ServeControl (per-request deadline / cancellation / partial_ok) lives in
// core/backend.h so the storage layer's streamed disk scans honour the
// same limits as the in-memory serving paths.

class CloudServer {
 public:
  struct Record {
    std::uint64_t id;
    std::string doc_ref;  // opaque handle to the (separately encrypted) docs
    AnyIndex index;
    // Slot into the server's sealed-segment table (load_from fills it), or
    // -1 when the record's segment identity is unknown or unsealed — such
    // records are always scanned live, never resolved from the verdict
    // cache. Write-through store() and restore() leave it at -1: those
    // records land in the active tail, which is mutable by definition.
    std::int32_t segment = -1;
  };

  // Layered stats: the authorization layer owns `authorized`; the scan
  // layer owns `scanned`/`matched` and never touches the former. When a
  // deadline-aware search throws, the stats out-param has already been
  // filled with the partial progress and the matching outcome flag.
  struct SearchStats {
    bool authorized = false;
    std::size_t scanned = 0;
    std::size_t matched = 0;
    bool deadline_exceeded = false;
    bool cancelled = false;
  };

  // Basic-APKS deployment: the server owns an ApksBackend over `scheme`.
  // (Also accepts an ApksPlus passed as its Apks base — that preserves the
  // pre-backend behaviour where the server applies no ingest validation;
  // deployments that want the APKS+ ingest hooks construct an
  // ApksPlusBackend and use the backend ctor.)
  CloudServer(const Apks& scheme, CapabilityVerifier verifier)
      : owned_backend_(std::make_unique<ApksBackend>(scheme)),
        backend_(owned_backend_.get()),
        verifier_(std::move(verifier)) {}

  // Scheme-agnostic deployment; the backend must outlive the server.
  CloudServer(const SearchBackend& backend, CapabilityVerifier verifier)
      : backend_(&backend), verifier_(std::move(verifier)) {}

  // Owner upload. Runs the backend's ingest stage (ingest_transform, then
  // validate_ingest — which throws to refuse the record) and returns the
  // record id. Safe to call concurrently with searches (exclusive lock; a
  // running scan finishes on its snapshot). With a persistent store
  // attached (attach_store), the record is also appended to disk under the
  // same id before the call returns.
  std::uint64_t store(EncryptedIndex index, std::string doc_ref);
  std::uint64_t store_any(AnyIndex index, std::string doc_ref);

  // Attaches a persistent backing store: subsequent store() calls write
  // through to it, and record ids are drawn from its id counter so a
  // restarted server continues the same id sequence. The store's scheme
  // tag must match the backend's. Pass nullptr to detach. Not thread-safe
  // against concurrent store()/search() — call during setup. The store
  // must outlive the server (or be detached).
  void attach_store(ShardedStore* store);

  // Replaces the in-memory record set with the store's contents (ascending
  // id — the original upload order), so a restarted server serves
  // byte-identical results to the server that originally populated the
  // store. The store's scheme tag must match the backend's. Returns the
  // number of records loaded. Persisted records were validated at original
  // ingest, so the ingest hooks do not run again here. Records from sealed
  // segments are tagged with their durable segment identity (see
  // Record::segment), which enables SearchEngine's verdict cache.
  std::size_t load_from(ShardedStore& store);

  // Reinserts a single persisted record under its original id (records
  // must arrive in ascending-id order to preserve the scan order
  // contract; load_from does this for you). Skips the ingest hooks, like
  // load_from.
  void restore(std::uint64_t id, EncryptedIndex index, std::string doc_ref);
  void restore_any(std::uint64_t id, AnyIndex index, std::string doc_ref);

  [[nodiscard]] std::size_t record_count() const {
    std::shared_lock lock(mutex_);
    return records_.size();
  }

  // Sealed-segment identities the current in-memory records are tagged
  // with (rebuilt by load_from; empty for a server populated purely
  // through store()/restore()). SearchEngine keys its verdict cache on
  // these.
  [[nodiscard]] std::vector<SegmentId> segment_table() const {
    std::shared_lock lock(mutex_);
    return segment_table_;
  }

  [[nodiscard]] const SearchBackend& backend() const noexcept {
    return *backend_;
  }
  // The APKS scheme behind an APKS-family backend; throws std::logic_error
  // for other backends (MRQED has no Apks).
  [[nodiscard]] const Apks& scheme() const;
  [[nodiscard]] const CapabilityVerifier& verifier() const noexcept {
    return verifier_;
  }

  // Full search protocol: signature check, preprocessing, linear scan.
  // Returns matching doc_refs (empty if the capability is not authorized —
  // inspect stats.authorized to distinguish).
  [[nodiscard]] std::vector<std::string> search(const SignedCapability& cap,
                                                SearchStats* stats = nullptr)
      const;

  // Scheme-agnostic full protocol: the signature is verified over the
  // backend's query_message (identical bytes to the SignedCapability path
  // for APKS-family backends).
  [[nodiscard]] std::vector<std::string> search_signed(
      const SignedQuery& query, SearchStats* stats = nullptr) const;

  // Deadline-aware variants: the scan checks `control` at block boundaries
  // and throws DeadlineExceeded / ServingError(kCancelled) when it fires
  // (stats, if given, hold the partial progress and the outcome flag).
  // With a default-constructed control these behave exactly like the plain
  // overloads. Batched deadline-aware serving lives in SearchEngine.
  [[nodiscard]] std::vector<std::string> search(const SignedCapability& cap,
                                                const ServeControl& control,
                                                SearchStats* stats = nullptr)
      const;
  [[nodiscard]] std::vector<std::string> search_signed(
      const SignedQuery& query, const ServeControl& control,
      SearchStats* stats = nullptr) const;

  // Verified parallel scan across `threads` workers (the paper notes the
  // linear scan parallelizes trivially across server cores). threads == 0
  // uses the hardware concurrency. Results are in record order regardless
  // of the thread count.
  [[nodiscard]] std::vector<std::string> search_parallel(
      const SignedCapability& cap, std::size_t threads,
      SearchStats* stats = nullptr) const;

  // Bench-only: search with a raw capability/query, skipping the
  // authorization layer entirely. Fills only the scan-layer stats fields.
  [[nodiscard]] std::vector<std::string> search_unchecked(
      const Capability& cap, SearchStats* stats = nullptr) const;
  [[nodiscard]] std::vector<std::string> search_unchecked_any(
      const AnyQuery& query, SearchStats* stats = nullptr) const;

  // Bench-only parallel variants.
  [[nodiscard]] std::vector<std::string> search_parallel_unchecked(
      const Capability& cap, std::size_t threads,
      SearchStats* stats = nullptr) const;
  [[nodiscard]] std::vector<std::string> search_parallel_unchecked_any(
      const AnyQuery& query, std::size_t threads,
      SearchStats* stats = nullptr) const;

 private:
  friend class SearchEngine;  // scans records_ under mutex_ directly

  // Wraps a typed APKS capability for the scan path; throws for non-APKS
  // backends. The returned handle borrows `cap` — scan-call lifetime only.
  [[nodiscard]] AnyQuery borrow_capability(const Capability& cap) const;

  // Scan body; caller must hold mutex_ (shared). `control` (optional) is
  // checked every kScanCheckRecords records.
  [[nodiscard]] std::vector<std::string> scan_locked(
      const AnyQuery& query, SearchStats* stats,
      const ServeControl* control = nullptr) const;
  [[nodiscard]] std::vector<std::string> scan_parallel_locked(
      const AnyQuery& query, std::size_t threads, SearchStats* stats) const;

  std::unique_ptr<ApksBackend> owned_backend_;  // legacy-ctor ownership
  const SearchBackend* backend_;
  CapabilityVerifier verifier_;
  mutable std::shared_mutex mutex_;
  std::vector<Record> records_;
  // Sealed-segment identities referenced by Record::segment slots; rebuilt
  // together with records_ by load_from (guarded by mutex_).
  std::vector<SegmentId> segment_table_;
  std::uint64_t next_id_ = 1;
  ShardedStore* backing_ = nullptr;  // optional write-through persistence
};

}  // namespace apks
