// The honest-but-curious cloud server of the system model (Fig. 1 / Fig. 6).
//
// Stores encrypted indexes contributed by multiple owners and serves
// searches: it verifies the capability's authority signature, preprocesses
// the capability's pairing argument once, then scans the whole database
// (searchable encryption reveals nothing that would allow sub-linear
// filtering). Returns the document references of matching records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "auth/authority.h"
#include "core/apks.h"

namespace apks {

class CloudServer {
 public:
  struct Record {
    std::uint64_t id;
    std::string doc_ref;  // opaque handle to the (separately encrypted) docs
    EncryptedIndex index;
  };

  struct SearchStats {
    bool authorized = false;
    std::size_t scanned = 0;
    std::size_t matched = 0;
  };

  CloudServer(const Apks& scheme, CapabilityVerifier verifier)
      : scheme_(&scheme), verifier_(std::move(verifier)) {}

  // Owner upload. Returns the record id.
  std::uint64_t store(EncryptedIndex index, std::string doc_ref);

  [[nodiscard]] std::size_t record_count() const noexcept {
    return records_.size();
  }

  // Full search protocol: signature check, preprocessing, linear scan.
  // Returns matching doc_refs (empty if the capability is not authorized —
  // inspect stats.authorized to distinguish).
  [[nodiscard]] std::vector<std::string> search(const SignedCapability& cap,
                                                SearchStats* stats = nullptr)
      const;

  // Search with a raw capability (no authorization layer) — used by
  // benchmarks to time the cryptographic scan in isolation.
  [[nodiscard]] std::vector<std::string> search_unchecked(
      const Capability& cap, SearchStats* stats = nullptr) const;

  // Parallel scan across `threads` workers (the paper notes the linear
  // scan parallelizes trivially across server cores). threads == 0 uses
  // the hardware concurrency. Results are in record order regardless of
  // the thread count.
  [[nodiscard]] std::vector<std::string> search_parallel(
      const Capability& cap, std::size_t threads,
      SearchStats* stats = nullptr) const;

 private:
  const Apks* scheme_;
  CapabilityVerifier verifier_;
  std::vector<Record> records_;
  std::uint64_t next_id_ = 1;
};

}  // namespace apks
