// Batched multi-query serving layer over CloudServer (the ROADMAP's
// heavy-traffic path).
//
// The paper's search protocol is a per-capability linear scan (Sec. 5.2,
// Fig. 6); under many concurrent users the server should amortize that scan
// across queries instead of repeating it per query. SearchEngine serves a
// batch of Q signed queries over a SINGLE pass of the record store:
//
//   1. verify all authority signatures up front (unauthorized queries are
//      never scanned),
//   2. preprocess each query once (SearchBackend::prepare), consulting an
//      LRU cache keyed by the backend's query digest so repeated identical
//      queries — the hot-key case — skip preprocessing entirely,
//   3. scan records in blocks, evaluating every query against a block
//      while it is cache-hot, with a work-stealing pool of worker threads
//      shared across all queries of the batch. Records tagged with a
//      sealed-segment identity (CloudServer::load_from) are first resolved
//      against the per-segment verdict cache (verdict_cache.h): a memoized
//      (digest, segment) verdict answers the record with a binary search
//      instead of a pairing product, and a complete (non-partial,
//      non-cancelled) scan memoizes the verdicts it just computed.
//
// The engine is scheme-agnostic: it drives the server's SearchBackend, so
// APKS, APKS+ and MRQED^D batches all flow through this identical path
// (which is what makes the cross-scheme comparison honest). The
// Capability-typed entry points are thin wrappers for APKS-family servers.
//
// Results are per query, in record order, and bit-identical to Q
// independent CloudServer::search calls. ServerMetrics extends the plain
// SearchStats with wall time, pairing-operation counts (Miller loops and
// final exponentiations, the paper's cost unit), and cache behaviour.
//
// Naming rule (same as CloudServer): entry points that skip the signature
// check carry "unchecked" in their name and exist for benchmarks/CLI use.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cloud/prepared_cache.h"
#include "cloud/server.h"
#include "cloud/verdict_cache.h"

namespace apks {

// Per-query serving metrics. The authorization layer owns `authorized`;
// the preprocessing layer owns `cache_hit`/`prepare_calls`; the scan layer
// owns `scanned`/`matched`. `ops` and `wall_s` are exact for single-query
// calls; in a batch the shared scan cost is attributed evenly across the
// authorized queries (they scan identical record sets, so per-query cost is
// uniform by construction) and the scan wall time is the batch's — the
// queries finish together.
struct ServerMetrics {
  bool authorized = false;
  bool cache_hit = false;
  std::size_t scanned = 0;
  std::size_t matched = 0;
  std::size_t prepare_calls = 0;
  // Deadline/cancellation outcome: the scan stopped at a block boundary
  // before covering the store, so `scanned` < store size and the results
  // are the matches from the blocks that did run.
  bool deadline_exceeded = false;
  bool cancelled = false;
  // Records resolved from the per-segment verdict cache instead of a
  // pairing match (a subset of `scanned` — memoized records still count as
  // scanned, they were just answered without crypto).
  std::size_t verdict_hits = 0;
  double wall_s = 0.0;
  PairingOpCounts ops;
};

// Whole-batch metrics; `ops` and `wall_s` are exact totals.
struct BatchMetrics {
  std::size_t queries = 0;
  std::size_t authorized = 0;
  std::size_t prepare_calls = 0;  // cache misses that ran prepare
  std::size_t cache_hits = 0;
  std::size_t records = 0;  // store size at scan time
  std::size_t threads = 0;  // workers actually used for the scan
  bool deadline_exceeded = false;  // the batch deadline fired mid-scan
  bool cancelled = false;          // the caller's token fired mid-scan
  std::size_t verdict_hits = 0;  // records resolved from the verdict cache
  std::size_t verdict_puts = 0;  // segment verdicts memoized by this batch
  double wall_s = 0.0;
  PairingOpCounts ops;
  std::vector<ServerMetrics> per_query;  // one entry per input query
};

// Lifetime serving outcomes across every batch an engine has seen (the
// counters behind `apks_cli serve` and the fault benches).
struct EngineCounters {
  std::uint64_t served = 0;             // batches that ran to completion
  std::uint64_t shed = 0;               // rejected by admission control
  std::uint64_t deadline_exceeded = 0;  // batches stopped by their deadline
  std::uint64_t cancelled = 0;          // batches stopped by a cancel token
  // Lifetime pairing work (miller / multi_miller / final_exp) across every
  // batch this engine served — engine-invariant, so the same workload
  // reports the same counts whether the scan ran scalar or SIMD.
  PairingOpCounts ops;
};

class SearchEngine {
 public:
  struct Options {
    // Scan worker threads; 0 = hardware concurrency.
    std::size_t threads = 0;
    // Records per work unit. Each block is evaluated against every query of
    // the batch before moving on (one touch per encrypted index per batch).
    // Also the deadline/cancellation granularity: controls are polled at
    // block boundaries only.
    std::size_t block_records = 8;
    // LRU capacity of the prepared-query cache; 0 disables caching.
    std::size_t cache_capacity = 64;
    // Default per-batch deadline (0 = none); a ServeControl with a nonzero
    // deadline_ms overrides it per call.
    std::uint64_t deadline_ms = 0;
    // Load shedding: batches admitted concurrently beyond this limit are
    // rejected up front with Overloaded (0 = unlimited). Shed batches run
    // no crypto at all.
    std::size_t max_inflight = 0;
    // Byte budget of the per-segment verdict cache (0 disables it). Hot
    // repeated queries over a server loaded from a sealed-segment-heavy
    // store then answer with zero pairings beyond the active tail.
    std::uint64_t verdict_cache_bytes = 0;
    // Share an externally owned verdict cache instead (wins over
    // verdict_cache_bytes) — lets the cache outlive one engine, e.g.
    // across a server reload, and lets several engines pool verdicts.
    std::shared_ptr<VerdictCache> verdict_cache = nullptr;
  };

  explicit SearchEngine(const CloudServer& server)
      : SearchEngine(server, Options()) {}
  SearchEngine(const CloudServer& server, Options options)
      : server_(&server),
        options_(options),
        cache_(options.cache_capacity),
        vcache_(options.verdict_cache != nullptr
                    ? options.verdict_cache
                    : (options.verdict_cache_bytes != 0
                           ? std::make_shared<VerdictCache>(
                                 options.verdict_cache_bytes)
                           : nullptr)) {}

  // Serve a batch: one result vector per capability, in record order,
  // identical to independent CloudServer::search calls. Unauthorized
  // capabilities yield an empty result with zero records scanned.
  // Requires an APKS-family server backend.
  //
  // Serving limits (all entry points): a batch beyond Options::max_inflight
  // throws Overloaded before any crypto runs. A deadline (control's, else
  // Options::deadline_ms) or the control's cancel token stops the scan at
  // the next block boundary; the batch then throws DeadlineExceeded /
  // ServingError(kCancelled) — with metrics already filled — unless
  // control.partial_ok, in which case the partial results are returned and
  // the metrics carry the outcome flags.
  [[nodiscard]] std::vector<std::vector<std::string>> search_batch(
      std::span<const SignedCapability> caps, BatchMetrics* metrics = nullptr,
      const ServeControl& control = {}) const;

  // Scheme-agnostic batch: signatures are verified over the backend's
  // query_message (identical acceptance to search_batch for APKS-family
  // backends).
  [[nodiscard]] std::vector<std::vector<std::string>> search_batch_signed(
      std::span<const SignedQuery> queries, BatchMetrics* metrics = nullptr,
      const ServeControl& control = {}) const;

  // Single verified query through the same cache + scan machinery.
  [[nodiscard]] std::vector<std::string> search(
      const SignedCapability& cap, ServerMetrics* metrics = nullptr,
      const ServeControl& control = {}) const;

  // Bench/CLI-only: serve raw capabilities/queries, skipping the
  // authorization layer. `authorized` stays false in the metrics (the
  // layer never ran).
  [[nodiscard]] std::vector<std::vector<std::string>> search_batch_unchecked(
      std::span<const Capability> caps, BatchMetrics* metrics = nullptr,
      const ServeControl& control = {}) const;
  [[nodiscard]] std::vector<std::vector<std::string>>
  search_batch_unchecked_any(std::span<const AnyQuery> queries,
                             BatchMetrics* metrics = nullptr,
                             const ServeControl& control = {}) const;

  // Cluster node role: identical scan to search_batch_unchecked_any, but
  // `match_ids` (one vector per query, parallel to the results) receives
  // the record id of every match. Ids are the merge key a coordinator
  // needs to k-way merge per-shard results byte-identically to a
  // single-node ShardedStore scan.
  [[nodiscard]] std::vector<std::vector<std::string>>
  search_batch_unchecked_any_ids(
      std::span<const AnyQuery> queries,
      std::vector<std::vector<std::uint64_t>>* match_ids,
      BatchMetrics* metrics = nullptr, const ServeControl& control = {}) const;

  // Lifetime cache counters (across all batches served by this engine).
  [[nodiscard]] std::size_t cache_hits() const { return cache_.hits(); }
  [[nodiscard]] std::size_t cache_misses() const { return cache_.misses(); }
  [[nodiscard]] std::size_t cache_size() const { return cache_.size(); }

  // The server this engine scans (the network front end reads its record
  // count, backend and verifier through this).
  [[nodiscard]] const CloudServer& server() const noexcept { return *server_; }

  // The per-segment verdict cache, or nullptr when disabled. Exposed so
  // callers can wire ShardedStore::set_invalidation_hook at it and read
  // its stats.
  [[nodiscard]] VerdictCache* verdict_cache() const noexcept {
    return vcache_.get();
  }

  // Lifetime serving outcomes (admission + deadline/cancel results). The
  // snapshot is taken under one lock, so concurrent observers never see a
  // torn view (e.g. `served` lagging `deadline_exceeded` mid-update).
  [[nodiscard]] EngineCounters counters() const {
    std::lock_guard lock(counters_mutex_);
    return counters_;
  }
  [[nodiscard]] std::size_t inflight() const noexcept {
    return inflight_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::vector<std::vector<std::string>> run_batch(
      std::span<const AnyQuery> queries, std::span<const char> authorized,
      bool checked, BatchMetrics* metrics, const ServeControl& control,
      std::vector<std::vector<std::uint64_t>>* match_ids = nullptr) const;

  // One counter bump per batch outcome — a mutex is cheap at that rate and
  // buys tear-free counters() snapshots (admission still uses the atomic
  // inflight_ for its check-and-claim).
  void bump_counter(std::uint64_t EngineCounters::* field) const {
    std::lock_guard lock(counters_mutex_);
    ++(counters_.*field);
  }

  const CloudServer* server_;
  Options options_;
  mutable PreparedQueryCache cache_;
  mutable std::shared_ptr<VerdictCache> vcache_;
  mutable std::atomic<std::size_t> inflight_{0};
  mutable std::mutex counters_mutex_;
  mutable EngineCounters counters_;
};

}  // namespace apks
