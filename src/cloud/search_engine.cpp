#include "cloud/search_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/failpoint.h"

namespace apks {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// A worker's span of unscanned blocks, packed into one atomic word so the
// owner can pop from the front and thieves can carve off the back with a
// single CAS each: high 32 bits = next block, low 32 bits = one past the
// last block.
constexpr std::uint64_t pack_range(std::uint32_t next,
                                   std::uint32_t end) noexcept {
  return (static_cast<std::uint64_t>(next) << 32) | end;
}
constexpr std::uint32_t range_next(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t range_end(std::uint64_t r) noexcept {
  return static_cast<std::uint32_t>(r);
}
constexpr std::uint32_t range_avail(std::uint64_t r) noexcept {
  const std::uint32_t next = range_next(r);
  const std::uint32_t end = range_end(r);
  return next < end ? end - next : 0;
}

struct alignas(64) WorkerSlot {
  std::atomic<std::uint64_t> range{0};
};

// Why the scan stopped early (block-boundary cooperative checks).
enum StopReason : int { kRun = 0, kStopDeadline = 1, kStopCancelled = 2 };

// RAII in-flight slot for admission control.
struct InflightGuard {
  explicit InflightGuard(std::atomic<std::size_t>* counter)
      : counter_(counter) {}
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;
  ~InflightGuard() {
    if (counter_ != nullptr) counter_->fetch_sub(1, std::memory_order_relaxed);
  }
  std::atomic<std::size_t>* counter_;
};

}  // namespace

std::vector<std::vector<std::string>> SearchEngine::search_batch(
    std::span<const SignedCapability> caps, BatchMetrics* metrics,
    const ServeControl& control) const {
  std::vector<AnyQuery> raw(caps.size());
  std::vector<char> serve(caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) {
    raw[i] = server_->borrow_capability(caps[i].cap);
    serve[i] = server_->verifier_.verify(caps[i]) ? 1 : 0;
  }
  return run_batch(raw, serve, /*checked=*/true, metrics, control);
}

std::vector<std::vector<std::string>> SearchEngine::search_batch_signed(
    std::span<const SignedQuery> queries, BatchMetrics* metrics,
    const ServeControl& control) const {
  const SearchBackend& backend = server_->backend();
  std::vector<AnyQuery> raw(queries.size());
  std::vector<char> serve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    raw[i] = queries[i].query;
    serve[i] = server_->verifier_.verify(backend, queries[i]) ? 1 : 0;
  }
  return run_batch(raw, serve, /*checked=*/true, metrics, control);
}

std::vector<std::vector<std::string>> SearchEngine::search_batch_unchecked(
    std::span<const Capability> caps, BatchMetrics* metrics,
    const ServeControl& control) const {
  std::vector<AnyQuery> raw(caps.size());
  const std::vector<char> serve(caps.size(), 1);
  for (std::size_t i = 0; i < caps.size(); ++i) {
    raw[i] = server_->borrow_capability(caps[i]);
  }
  return run_batch(raw, serve, /*checked=*/false, metrics, control);
}

std::vector<std::vector<std::string>> SearchEngine::search_batch_unchecked_any(
    std::span<const AnyQuery> queries, BatchMetrics* metrics,
    const ServeControl& control) const {
  const std::vector<char> serve(queries.size(), 1);
  return run_batch(queries, serve, /*checked=*/false, metrics, control);
}

std::vector<std::vector<std::string>>
SearchEngine::search_batch_unchecked_any_ids(
    std::span<const AnyQuery> queries,
    std::vector<std::vector<std::uint64_t>>* match_ids, BatchMetrics* metrics,
    const ServeControl& control) const {
  const std::vector<char> serve(queries.size(), 1);
  return run_batch(queries, serve, /*checked=*/false, metrics, control,
                   match_ids);
}

std::vector<std::string> SearchEngine::search(const SignedCapability& cap,
                                              ServerMetrics* metrics,
                                              const ServeControl& control)
    const {
  BatchMetrics batch;
  auto out = search_batch({&cap, 1}, metrics != nullptr ? &batch : nullptr,
                          control);
  if (metrics != nullptr) *metrics = batch.per_query[0];
  return std::move(out[0]);
}

std::vector<std::vector<std::string>> SearchEngine::run_batch(
    std::span<const AnyQuery> queries, std::span<const char> serve,
    bool checked, BatchMetrics* metrics, const ServeControl& control,
    std::vector<std::vector<std::uint64_t>>* match_ids) const {
  if (match_ids != nullptr) {
    match_ids->assign(queries.size(), {});
  }
  const SearchBackend& backend = server_->backend();
  const Pairing& pairing = backend.pairing();

  // --- Phase 0: admission. A shed batch runs no crypto at all. -----------
  const std::size_t now_inflight =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  InflightGuard guard(&inflight_);
  if (options_.max_inflight != 0 && now_inflight > options_.max_inflight) {
    bump_counter(&EngineCounters::shed);
    throw Overloaded("search engine overloaded: " +
                     std::to_string(now_inflight) + " batches in flight, limit " +
                     std::to_string(options_.max_inflight));
  }

  const std::uint64_t deadline_ms =
      control.deadline_ms != 0 ? control.deadline_ms : options_.deadline_ms;
  const bool has_deadline = deadline_ms != 0;
  const auto batch_t0 = Clock::now();
  const Clock::time_point deadline_at =
      batch_t0 + std::chrono::milliseconds(deadline_ms);
  // Cooperative stop flag, polled at block boundaries by every worker.
  std::atomic<int> stop{kRun};
  auto should_stop = [&]() -> bool {
    if (stop.load(std::memory_order_relaxed) != kRun) return true;
    if (control.cancel != nullptr &&
        control.cancel->load(std::memory_order_relaxed)) {
      stop.store(kStopCancelled, std::memory_order_relaxed);
      return true;
    }
    if (has_deadline && Clock::now() >= deadline_at) {
      stop.store(kStopDeadline, std::memory_order_relaxed);
      return true;
    }
    return false;
  };

  BatchMetrics bm;
  bm.queries = queries.size();
  bm.per_query.resize(queries.size());
  const PairingOpCounts batch_c0 = pairing.op_counts();

  // --- Phase 1: per-query preprocessing through the LRU cache. -----------
  std::vector<AnyPrepared> prepared(queries.size());
  // Digests double as the verdict-cache key in phase 2 — computed once.
  std::vector<QueryDigest> digests(queries.size());
  std::vector<std::size_t> active;  // indices of queries that will scan
  active.reserve(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ServerMetrics& m = bm.per_query[i];
    m.authorized = checked && serve[i] != 0;
    if (serve[i] == 0) continue;  // rejected: never prepared, never scanned
    if (should_stop()) break;     // deadline blew during preprocessing
    const auto t0 = Clock::now();
    const PairingOpCounts c0 = pairing.op_counts();
    digests[i] = backend.digest(queries[i]);
    AnyPrepared entry = cache_.get(digests[i]);
    if (!entry.empty()) {
      m.cache_hit = true;
    } else {
      entry = cache_.put(digests[i], backend.prepare(queries[i]));
      m.prepare_calls = 1;
    }
    prepared[i] = std::move(entry);
    active.push_back(i);
    m.ops += pairing.op_counts() - c0;
    m.wall_s += seconds_since(t0);
  }

  // --- Phase 2: one blocked pass over the store for the whole batch. -----
  std::vector<std::vector<std::string>> results(queries.size());
  if (!active.empty()) {
    std::shared_lock lock(server_->mutex_);
    const auto& records = server_->records_;
    const auto& segtable = server_->segment_table_;
    const std::size_t n = records.size();
    bm.records = n;
    const std::size_t block = std::max<std::size_t>(1, options_.block_records);
    const std::size_t n_blocks = (n + block - 1) / block;

    // Verdict-cache probe: one lookup per (active query, sealed segment).
    // Records of a memoized segment answer with a binary id search instead
    // of a pairing product; misses are memoized after a complete scan.
    const bool use_vcache =
        vcache_ != nullptr && vcache_->enabled() && !segtable.empty();
    std::vector<std::vector<std::shared_ptr<const VerdictCache::MatchedIds>>>
        verdicts;
    if (use_vcache) {
      verdicts.resize(active.size());
      for (std::size_t q = 0; q < active.size(); ++q) {
        verdicts[q].resize(segtable.size());
        for (std::size_t s = 0; s < segtable.size(); ++s) {
          verdicts[q][s] = vcache_->get(digests[active[q]], segtable[s]);
        }
      }
    }

    std::vector<std::vector<char>> hits(active.size(),
                                        std::vector<char>(n, 0));
    std::atomic<std::size_t> scanned_records{0};
    auto run_block = [&](std::size_t b) {
      // Chaos tests arm this site with a delay to force deadlines
      // deterministically mid-scan.
      (void)failpoint("engine.scan_block");
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      // Per query: resolve memoized records, then hand the rest to the
      // backend as ONE block so lane-parallel kernels (match_block) can run
      // the records side by side instead of one pairing product at a time.
      std::vector<const AnyIndex*> pending;
      std::vector<std::size_t> pending_r;
      pending.reserve(hi - lo);
      pending_r.reserve(hi - lo);
      const auto verdict_buf = std::make_unique<bool[]>(hi - lo);
      for (std::size_t q = 0; q < active.size(); ++q) {
        pending.clear();
        pending_r.clear();
        for (std::size_t r = lo; r < hi; ++r) {
          const auto& record = records[r];
          const std::int32_t slot = use_vcache ? record.segment : -1;
          const auto* memo =
              slot >= 0 ? verdicts[q][static_cast<std::size_t>(slot)].get()
                        : nullptr;
          if (memo != nullptr) {
            hits[q][r] = std::binary_search(memo->begin(), memo->end(),
                                            record.id)
                             ? 1
                             : 0;
          } else {
            pending.push_back(&record.index);
            pending_r.push_back(r);
          }
        }
        if (!pending.empty()) {
          backend.match_block(prepared[active[q]], pending.data(),
                              pending.size(), verdict_buf.get());
          for (std::size_t i = 0; i < pending.size(); ++i) {
            hits[q][pending_r[i]] = verdict_buf[i] ? 1 : 0;
          }
        }
      }
      scanned_records.fetch_add(hi - lo, std::memory_order_relaxed);
    };

    std::size_t threads =
        options_.threads != 0
            ? options_.threads
            : std::max<std::size_t>(1, std::thread::hardware_concurrency());
    threads = std::min(threads, std::max<std::size_t>(1, n_blocks));
    bm.threads = threads;

    const auto scan_t0 = Clock::now();
    const PairingOpCounts scan_c0 = pairing.op_counts();
    if (threads <= 1) {
      for (std::size_t b = 0; b < n_blocks; ++b) {
        if (should_stop()) break;
        run_block(b);
      }
    } else {
      // Contiguous initial partition; idle workers steal the back half of
      // the most loaded victim's remaining range.
      std::vector<WorkerSlot> slots(threads);
      for (std::size_t w = 0; w < threads; ++w) {
        slots[w].range.store(
            pack_range(static_cast<std::uint32_t>(n_blocks * w / threads),
                       static_cast<std::uint32_t>(n_blocks * (w + 1) /
                                                  threads)));
      }
      auto worker = [&](std::size_t self) {
        for (;;) {
          // Block boundary: the only place a worker gives up its scan.
          if (should_stop()) return;
          // Pop the front of our own range.
          std::uint64_t cur = slots[self].range.load();
          bool ran = false;
          while (range_avail(cur) != 0) {
            const std::uint64_t next_range =
                pack_range(range_next(cur) + 1, range_end(cur));
            if (slots[self].range.compare_exchange_weak(cur, next_range)) {
              run_block(range_next(cur));
              ran = true;
              break;
            }
          }
          if (ran) continue;
          // Empty: steal half of the largest remaining range.
          std::size_t victim = threads;
          std::uint32_t best = 0;
          for (std::size_t v = 0; v < threads; ++v) {
            if (v == self) continue;
            const std::uint32_t avail =
                range_avail(slots[v].range.load());
            if (avail > best) {
              best = avail;
              victim = v;
            }
          }
          if (victim == threads) return;  // no work anywhere
          std::uint64_t r = slots[victim].range.load();
          const std::uint32_t avail = range_avail(r);
          if (avail == 0) continue;  // raced with the victim; rescan
          const std::uint32_t take = (avail + 1) / 2;
          const std::uint32_t end = range_end(r);
          if (slots[victim].range.compare_exchange_strong(
                  r, pack_range(range_next(r), end - take))) {
            // Our own slot is empty, so nobody can race this store.
            slots[self].range.store(pack_range(end - take, end));
          }
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (auto& t : pool) t.join();
    }
    const PairingOpCounts scan_ops = pairing.op_counts() - scan_c0;
    const double scan_wall = seconds_since(scan_t0);
    const bool complete = stop.load(std::memory_order_relaxed) == kRun;
    const std::size_t covered =
        complete ? n : scanned_records.load(std::memory_order_relaxed);

    // Memoize the verdicts this batch just computed — but only from a
    // complete pass (a partial/cancelled scan has holes in the hit
    // matrix) and only for sealed segments (the only ones with slots).
    if (use_vcache && complete) {
      for (std::size_t q = 0; q < active.size(); ++q) {
        std::vector<char> miss(segtable.size(), 0);
        bool any_miss = false;
        for (std::size_t s = 0; s < segtable.size(); ++s) {
          if (verdicts[q][s] == nullptr) {
            miss[s] = 1;
            any_miss = true;
          }
        }
        if (!any_miss) continue;
        std::vector<VerdictCache::MatchedIds> fresh(segtable.size());
        for (std::size_t r = 0; r < n; ++r) {
          const std::int32_t slot = records[r].segment;
          if (slot < 0 || miss[static_cast<std::size_t>(slot)] == 0) continue;
          if (hits[q][r] != 0) {
            // records_ is ascending by id, so each list stays sorted.
            fresh[static_cast<std::size_t>(slot)].push_back(records[r].id);
          }
        }
        for (std::size_t s = 0; s < segtable.size(); ++s) {
          if (miss[s] == 0) continue;
          // An empty list is a cached negative — just as valuable.
          vcache_->put(digests[active[q]], segtable[s], std::move(fresh[s]));
          ++bm.verdict_puts;
        }
      }
    }

    for (std::size_t q = 0; q < active.size(); ++q) {
      ServerMetrics& m = bm.per_query[active[q]];
      m.scanned = covered;
      m.ops += {scan_ops.miller / active.size(),
                scan_ops.multi_miller / active.size(),
                scan_ops.final_exp / active.size()};
      m.wall_s += scan_wall;
      if (use_vcache && complete) {
        // Which blocks of a partial scan ran is not tracked per record, so
        // verdict attribution is only exact for complete passes.
        for (std::size_t r = 0; r < n; ++r) {
          const std::int32_t slot = records[r].segment;
          if (slot >= 0 &&
              verdicts[q][static_cast<std::size_t>(slot)] != nullptr) {
            ++m.verdict_hits;
          }
        }
      }
      auto& out = results[active[q]];
      for (std::size_t r = 0; r < n; ++r) {
        if (hits[q][r] != 0) {
          ++m.matched;
          out.push_back(records[r].doc_ref);
          if (match_ids != nullptr) {
            (*match_ids)[active[q]].push_back(records[r].id);
          }
        }
      }
    }
  }

  for (const ServerMetrics& m : bm.per_query) {
    bm.authorized += m.authorized ? 1 : 0;
    bm.prepare_calls += m.prepare_calls;
    bm.cache_hits += m.cache_hit ? 1 : 0;
    bm.verdict_hits += m.verdict_hits;
  }
  bm.ops = pairing.op_counts() - batch_c0;
  bm.wall_s = seconds_since(batch_t0);
  {
    std::lock_guard lock(counters_mutex_);
    counters_.ops += bm.ops;
  }

  const int outcome = stop.load(std::memory_order_relaxed);
  if (outcome != kRun) {
    bm.deadline_exceeded = outcome == kStopDeadline;
    bm.cancelled = outcome == kStopCancelled;
    for (const std::size_t q : active) {
      bm.per_query[q].deadline_exceeded = bm.deadline_exceeded;
      bm.per_query[q].cancelled = bm.cancelled;
    }
    bump_counter(outcome == kStopDeadline ? &EngineCounters::deadline_exceeded
                                          : &EngineCounters::cancelled);
    if (metrics != nullptr) *metrics = bm;
    if (!control.partial_ok) {
      if (outcome == kStopCancelled) {
        throw ServingError(ErrorCode::kCancelled,
                           "batch cancelled at a block boundary");
      }
      throw DeadlineExceeded("batch deadline (" + std::to_string(deadline_ms) +
                             " ms) exceeded at a block boundary");
    }
    return results;
  }
  bump_counter(&EngineCounters::served);
  if (metrics != nullptr) *metrics = std::move(bm);
  return results;
}

}  // namespace apks
