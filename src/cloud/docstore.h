// Encrypted document storage.
//
// The paper treats document confidentiality as out of scope ("the data
// contents are protected using separate, existing data encryption
// schemes"); this is the library's implementation of that separate layer: a
// blob store holding AEAD-sealed documents keyed by the doc_ref strings
// that searches return. Key distribution for documents (e.g. via ABE)
// remains the deployment's choice — owners keep their document keys and
// hand them to authorized users out of band.
//
// Concurrency contract (same shape as CloudServer's): put/load are writers
// under an exclusive lock; get/get_text/size/persist take the lock shared
// and may run concurrently with each other. find() hands out a pointer for
// the tests' tamper-injection path — callers must not race it against
// writers (std::map pointers stay valid across inserts, so a find()
// followed by in-place tampering is safe as long as nobody load()s).
//
// Persistence rides the storage engine's segment format (store/segment.h):
// persist() writes every blob as one CRC-framed record, load() replays a
// segment file back — the same writer/reader and crash-recovery rules as
// the encrypted-index store.
#pragma once

#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/aead.h"
#include "common/rng.h"

namespace apks {

struct DocumentKey {
  std::array<std::uint8_t, kAeadKeySize> key{};

  [[nodiscard]] static DocumentKey random(Rng& rng) {
    DocumentKey k;
    rng.fill(k.key);
    return k;
  }
};

class DocumentStore {
 public:
  // Seals and stores `content` under `doc_ref`; the ref doubles as the AEAD
  // associated data so a blob cannot be silently re-labelled. A fresh
  // random nonce is stored alongside the blob.
  void put(const std::string& doc_ref, const DocumentKey& key,
           std::span<const std::uint8_t> content, Rng& rng);

  void put(const std::string& doc_ref, const DocumentKey& key,
           std::string_view content, Rng& rng) {
    put(doc_ref, key,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(content.data()),
            content.size()),
        rng);
  }

  // Fetches and opens a document; nullopt if the ref is unknown or the key
  // is wrong / the blob was tampered with.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> get(
      const std::string& doc_ref, const DocumentKey& key) const;

  [[nodiscard]] std::optional<std::string> get_text(
      const std::string& doc_ref, const DocumentKey& key) const {
    const auto bytes = get(doc_ref, key);
    if (!bytes.has_value()) return std::nullopt;
    return std::string(bytes->begin(), bytes->end());
  }

  [[nodiscard]] std::size_t size() const {
    std::shared_lock lock(mutex_);
    return blobs_.size();
  }

  // Writes all sealed blobs (still sealed — persistence never sees
  // plaintext) to `file` as one segment of CRC-framed records, fsynced.
  void persist(const std::filesystem::path& file) const;

  // Replaces the store's contents with the blobs of a persisted segment
  // file, truncating any torn tail first (crash recovery). Returns the
  // number of blobs loaded.
  std::size_t load(const std::filesystem::path& file);

  // The cloud's view of a stored blob (for tamper-injection in tests).
  struct Blob {
    std::array<std::uint8_t, kAeadNonceSize> nonce{};
    std::vector<std::uint8_t> sealed;
  };
  [[nodiscard]] Blob* find(const std::string& doc_ref) {
    std::shared_lock lock(mutex_);
    const auto it = blobs_.find(doc_ref);
    return it == blobs_.end() ? nullptr : &it->second;
  }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, Blob> blobs_;
};

inline void DocumentStore::put(const std::string& doc_ref,
                               const DocumentKey& key,
                               std::span<const std::uint8_t> content,
                               Rng& rng) {
  Blob blob;
  rng.fill(blob.nonce);
  const std::span<const std::uint8_t> aad(
      reinterpret_cast<const std::uint8_t*>(doc_ref.data()), doc_ref.size());
  blob.sealed = aead_seal(key.key, blob.nonce, aad, content);
  std::unique_lock lock(mutex_);
  blobs_[doc_ref] = std::move(blob);
}

inline std::optional<std::vector<std::uint8_t>> DocumentStore::get(
    const std::string& doc_ref, const DocumentKey& key) const {
  std::shared_lock lock(mutex_);
  const auto it = blobs_.find(doc_ref);
  if (it == blobs_.end()) return std::nullopt;
  const std::span<const std::uint8_t> aad(
      reinterpret_cast<const std::uint8_t*>(doc_ref.data()), doc_ref.size());
  return aead_open(key.key, it->second.nonce, aad, it->second.sealed);
}

}  // namespace apks
