#include "cloud/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/failpoint.h"

namespace apks {

namespace {

// How often the single-query scan polls its ServeControl: every block of
// this many records (one pairing-based match per record, so the overshoot
// past a deadline is at most this many match calls).
constexpr std::size_t kScanCheckRecords = 8;

[[nodiscard]] bool is_apks_family(SchemeKind kind) noexcept {
  return kind == SchemeKind::kApks || kind == SchemeKind::kApksPlus;
}

void require_scheme_match(const SearchBackend& backend,
                          const ShardedStore& store, const char* what) {
  if (store.scheme() != backend.kind()) {
    throw std::invalid_argument(
        std::string(what) + ": store at " + store.dir().string() +
        " holds '" + std::string(scheme_name(store.scheme())) +
        "' records, server backend serves '" + std::string(backend.name()) +
        "'");
  }
}

}  // namespace

const Apks& CloudServer::scheme() const {
  const auto* apks = dynamic_cast<const ApksBackend*>(backend_);
  if (apks == nullptr) {
    throw std::logic_error("CloudServer::scheme: backend '" +
                           std::string(backend_->name()) +
                           "' is not APKS-family");
  }
  return apks->scheme();
}

AnyQuery CloudServer::borrow_capability(const Capability& cap) const {
  if (!is_apks_family(backend_->kind())) {
    throw std::invalid_argument(
        "CloudServer: typed APKS capability on a '" +
        std::string(backend_->name()) + "' backend");
  }
  return AnyQuery::ref(backend_->kind(), &cap);
}

std::uint64_t CloudServer::store(EncryptedIndex index, std::string doc_ref) {
  if (!is_apks_family(backend_->kind())) {
    throw std::invalid_argument("CloudServer: typed APKS index on a '" +
                                std::string(backend_->name()) + "' backend");
  }
  return store_any(AnyIndex::own(backend_->kind(), std::move(index)),
                   std::move(doc_ref));
}

std::uint64_t CloudServer::store_any(AnyIndex index, std::string doc_ref) {
  // Ingest stage outside the lock: the proxy transformation chain (APKS+)
  // and the admission check are pairing work, not record-store mutation.
  index = backend_->ingest_transform(std::move(index));
  backend_->validate_ingest(index);
  std::unique_lock lock(mutex_);
  std::uint64_t id;
  if (backing_ != nullptr) {
    // The store assigns the id so the on-disk sequence stays authoritative
    // across restarts; persist before the record becomes searchable.
    id = backing_->append_any(doc_ref, index);
    next_id_ = id + 1;
  } else {
    id = next_id_++;
  }
  records_.push_back({id, std::move(doc_ref), std::move(index)});
  return id;
}

void CloudServer::attach_store(ShardedStore* store) {
  if (store != nullptr) {
    require_scheme_match(*backend_, *store, "CloudServer::attach_store");
  }
  std::unique_lock lock(mutex_);
  backing_ = store;
  if (store != nullptr) {
    next_id_ = std::max(next_id_, store->next_id());
  }
}

void CloudServer::restore(std::uint64_t id, EncryptedIndex index,
                          std::string doc_ref) {
  if (!is_apks_family(backend_->kind())) {
    throw std::invalid_argument("CloudServer: typed APKS index on a '" +
                                std::string(backend_->name()) + "' backend");
  }
  restore_any(id, AnyIndex::own(backend_->kind(), std::move(index)),
              std::move(doc_ref));
}

void CloudServer::restore_any(std::uint64_t id, AnyIndex index,
                              std::string doc_ref) {
  if (index.kind() != backend_->kind()) {
    throw std::invalid_argument(
        "CloudServer::restore: record of scheme '" +
        std::string(scheme_name(index.kind())) + "' on a '" +
        std::string(backend_->name()) + "' backend");
  }
  std::unique_lock lock(mutex_);
  if (!records_.empty() && records_.back().id >= id) {
    throw std::invalid_argument(
        "CloudServer::restore: record ids must be ascending");
  }
  records_.push_back({id, std::move(doc_ref), std::move(index)});
  next_id_ = std::max(next_id_, id + 1);
}

std::size_t CloudServer::load_from(ShardedStore& store) {
  require_scheme_match(*backend_, store, "CloudServer::load_from");
  // Stream with segment identities so records from sealed (immutable)
  // segments carry a slot into the segment table — that tag is what lets
  // SearchEngine resolve them from the verdict cache. Active-tail records
  // stay untagged (slot -1) and are always scanned live.
  struct Loaded {
    StoredAnyRecord rec;
    std::int32_t slot = -1;
  };
  std::vector<Loaded> loaded;
  std::vector<SegmentId> table;
  std::unordered_map<SegmentId, std::int32_t, SegmentIdHash> slots;
  store.for_each_record_any_segmented(
      [&](StoredAnyRecord&& rec, const SegmentId& seg, bool sealed) {
        std::int32_t slot = -1;
        if (sealed) {
          const auto [it, inserted] = slots.try_emplace(
              seg, static_cast<std::int32_t>(table.size()));
          if (inserted) table.push_back(seg);
          slot = it->second;
        }
        loaded.push_back({std::move(rec), slot});
      });
  // Each shard streams in ascending-id order; the global sort restores the
  // original upload order across shards (the scan-order contract).
  std::sort(loaded.begin(), loaded.end(), [](const Loaded& a, const Loaded& b) {
    return a.rec.id < b.rec.id;
  });
  std::unique_lock lock(mutex_);
  records_.clear();
  records_.reserve(loaded.size());
  segment_table_ = std::move(table);
  for (Loaded& l : loaded) {
    records_.push_back({l.rec.id, std::move(l.rec.doc_ref),
                        std::move(l.rec.index), l.slot});
    next_id_ = std::max(next_id_, l.rec.id + 1);
  }
  return records_.size();
}

std::vector<std::string> CloudServer::search(const SignedCapability& cap,
                                             SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(cap)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_locked(borrow_capability(cap.cap), stats);
}

std::vector<std::string> CloudServer::search_signed(const SignedQuery& query,
                                                    SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(*backend_, query)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_locked(query.query, stats);
}

std::vector<std::string> CloudServer::search(const SignedCapability& cap,
                                             const ServeControl& control,
                                             SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(cap)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_locked(borrow_capability(cap.cap), stats, &control);
}

std::vector<std::string> CloudServer::search_signed(const SignedQuery& query,
                                                    const ServeControl& control,
                                                    SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(*backend_, query)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_locked(query.query, stats, &control);
}

std::vector<std::string> CloudServer::search_parallel(
    const SignedCapability& cap, std::size_t threads,
    SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(cap)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_parallel_locked(borrow_capability(cap.cap), threads, stats);
}

std::vector<std::string> CloudServer::search_unchecked(
    const Capability& cap, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_locked(borrow_capability(cap), stats);
}

std::vector<std::string> CloudServer::search_unchecked_any(
    const AnyQuery& query, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_locked(query, stats);
}

std::vector<std::string> CloudServer::search_parallel_unchecked(
    const Capability& cap, std::size_t threads, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_parallel_locked(borrow_capability(cap), threads, stats);
}

std::vector<std::string> CloudServer::search_parallel_unchecked_any(
    const AnyQuery& query, std::size_t threads, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_parallel_locked(query, threads, stats);
}

std::vector<std::string> CloudServer::scan_locked(
    const AnyQuery& query, SearchStats* stats,
    const ServeControl* control) const {
  using Clock = std::chrono::steady_clock;
  const bool has_deadline = control != nullptr && control->deadline_ms != 0;
  const Clock::time_point deadline_at =
      has_deadline
          ? Clock::now() + std::chrono::milliseconds(control->deadline_ms)
          : Clock::time_point{};

  std::size_t scanned = 0;
  std::size_t matched = 0;
  const AnyPrepared prepared = backend_->prepare(query);
  std::vector<std::string> matches;
  for (const auto& record : records_) {
    if (control != nullptr && scanned % kScanCheckRecords == 0) {
      // Block boundary: the only place a request gives up. Chaos tests arm
      // this site with a delay to force deadlines deterministically.
      (void)failpoint("server.scan_block");
      const bool cancelled = control->cancel != nullptr &&
                             control->cancel->load(std::memory_order_relaxed);
      if (cancelled || (has_deadline && Clock::now() >= deadline_at)) {
        if (stats != nullptr) {
          stats->scanned = scanned;
          stats->matched = matched;
          stats->cancelled = cancelled;
          stats->deadline_exceeded = !cancelled;
        }
        if (cancelled) {
          throw ServingError(ErrorCode::kCancelled,
                             "search cancelled after " +
                                 std::to_string(scanned) + " records");
        }
        throw DeadlineExceeded("search deadline (" +
                               std::to_string(control->deadline_ms) +
                               " ms) exceeded after " +
                               std::to_string(scanned) + " records");
      }
    }
    ++scanned;
    if (backend_->match(prepared, record.index)) {
      ++matched;
      matches.push_back(record.doc_ref);
    }
  }
  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->matched = matched;
  }
  return matches;
}

std::vector<std::string> CloudServer::scan_parallel_locked(
    const AnyQuery& query, std::size_t threads, SearchStats* stats) const {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, records_.size()));
  if (threads <= 1) return scan_locked(query, stats);

  const AnyPrepared prepared = backend_->prepare(query);
  std::vector<char> hit(records_.size(), 0);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= records_.size()) return;
      hit[i] = backend_->match(prepared, records_[i].index) ? 1 : 0;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  std::size_t matched = 0;
  std::vector<std::string> matches;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (hit[i] != 0) {
      ++matched;
      matches.push_back(records_[i].doc_ref);
    }
  }
  if (stats != nullptr) {
    stats->scanned = records_.size();
    stats->matched = matched;
  }
  return matches;
}

}  // namespace apks
