#include "cloud/server.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace apks {

std::uint64_t CloudServer::store(EncryptedIndex index, std::string doc_ref) {
  std::unique_lock lock(mutex_);
  std::uint64_t id;
  if (backing_ != nullptr) {
    // The store assigns the id so the on-disk sequence stays authoritative
    // across restarts; persist before the record becomes searchable.
    id = backing_->append(doc_ref, index);
    next_id_ = id + 1;
  } else {
    id = next_id_++;
  }
  records_.push_back({id, std::move(doc_ref), std::move(index)});
  return id;
}

void CloudServer::attach_store(ShardedStore* store) {
  std::unique_lock lock(mutex_);
  backing_ = store;
  if (store != nullptr) {
    next_id_ = std::max(next_id_, store->next_id());
  }
}

void CloudServer::restore(std::uint64_t id, EncryptedIndex index,
                          std::string doc_ref) {
  std::unique_lock lock(mutex_);
  if (!records_.empty() && records_.back().id >= id) {
    throw std::invalid_argument(
        "CloudServer::restore: record ids must be ascending");
  }
  records_.push_back({id, std::move(doc_ref), std::move(index)});
  next_id_ = std::max(next_id_, id + 1);
}

std::size_t CloudServer::load_from(ShardedStore& store) {
  std::vector<StoredIndexRecord> loaded = store.load_all();
  std::unique_lock lock(mutex_);
  records_.clear();
  records_.reserve(loaded.size());
  for (StoredIndexRecord& rec : loaded) {
    records_.push_back(
        {rec.id, std::move(rec.doc_ref), std::move(rec.index)});
    next_id_ = std::max(next_id_, rec.id + 1);
  }
  return records_.size();
}

std::vector<std::string> CloudServer::search(const SignedCapability& cap,
                                             SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(cap)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_locked(cap.cap, stats);
}

std::vector<std::string> CloudServer::search_parallel(
    const SignedCapability& cap, std::size_t threads,
    SearchStats* stats) const {
  if (stats != nullptr) *stats = SearchStats{};
  if (!verifier_.verify(cap)) return {};
  if (stats != nullptr) stats->authorized = true;
  std::shared_lock lock(mutex_);
  return scan_parallel_locked(cap.cap, threads, stats);
}

std::vector<std::string> CloudServer::search_unchecked(
    const Capability& cap, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_locked(cap, stats);
}

std::vector<std::string> CloudServer::search_parallel_unchecked(
    const Capability& cap, std::size_t threads, SearchStats* stats) const {
  std::shared_lock lock(mutex_);
  return scan_parallel_locked(cap, threads, stats);
}

std::vector<std::string> CloudServer::scan_locked(const Capability& cap,
                                                  SearchStats* stats) const {
  std::size_t scanned = 0;
  std::size_t matched = 0;
  const PreparedCapability prepared = scheme_->prepare(cap);
  std::vector<std::string> matches;
  for (const auto& record : records_) {
    ++scanned;
    if (scheme_->search_prepared(prepared, record.index)) {
      ++matched;
      matches.push_back(record.doc_ref);
    }
  }
  if (stats != nullptr) {
    stats->scanned = scanned;
    stats->matched = matched;
  }
  return matches;
}

std::vector<std::string> CloudServer::scan_parallel_locked(
    const Capability& cap, std::size_t threads, SearchStats* stats) const {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads = std::min(threads, std::max<std::size_t>(1, records_.size()));
  if (threads <= 1) return scan_locked(cap, stats);

  const PreparedCapability prepared = scheme_->prepare(cap);
  std::vector<char> hit(records_.size(), 0);
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= records_.size()) return;
      hit[i] = scheme_->search_prepared(prepared, records_[i].index) ? 1 : 0;
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  std::size_t matched = 0;
  std::vector<std::string> matches;
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (hit[i] != 0) {
      ++matched;
      matches.push_back(records_[i].doc_ref);
    }
  }
  if (stats != nullptr) {
    stats->scanned = records_.size();
    stats->matched = matched;
  }
  return matches;
}

}  // namespace apks
