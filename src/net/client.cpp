#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <climits>

#include <array>
#include <cerrno>
#include <cstring>

#include "hpe/serialize.h"

namespace apks::net {

namespace {

// Transport-level failures surface through the serving taxonomy; protocol
// statuses with no ErrorCode counterpart degrade to kUnavailable with the
// status name in the message.
ErrorCode error_from_wire(WireStatus status) noexcept {
  const auto v = static_cast<std::uint8_t>(status);
  if (v >= static_cast<std::uint8_t>(ErrorCode::kIo) &&
      v <= static_cast<std::uint8_t>(ErrorCode::kCancelled)) {
    return static_cast<ErrorCode>(v);
  }
  return ErrorCode::kUnavailable;
}

[[noreturn]] void throw_status(const StatusMsg& msg) {
  throw ServingError(error_from_wire(msg.status),
                     "net: server closed session (" +
                         std::string(wire_status_name(msg.status)) +
                         "): " + msg.message);
}

}  // namespace

std::vector<std::uint8_t> encode_signature(const Curve& curve,
                                           const IbsSignature& sig) {
  ByteWriter w;
  write_point(curve, sig.u, w);
  write_point(curve, sig.v, w);
  return w.take();
}

NetClient::~NetClient() { close(); }

void NetClient::close() {
  std::lock_guard lk(lifecycle_mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void NetClient::connect(const std::string& host, std::uint16_t port,
                        std::uint64_t timeout_ms) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ServingError(ErrorCode::kIo, "net: socket() failed: " +
                                           std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw ServingError(ErrorCode::kIo, "net: bad host " + host);
  }
  // With a timeout the connect runs nonblocking: start it, poll for
  // writability under the budget, then read SO_ERROR for the real outcome.
  // A blocking ::connect() against a dead or blackholed peer would
  // otherwise hang for the kernel's SYN-retry budget (minutes) — fatal for
  // replica failover, which needs dead nodes to fail fast.
  const std::string peer = host + ":" + std::to_string(port);
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (timeout_ms != 0 && flags >= 0) {
    (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (timeout_ms == 0 || errno != EINPROGRESS) {
      const std::string err = std::strerror(errno);
      close();
      throw ServingError(ErrorCode::kIo,
                         "net: connect to " + peer + " failed: " + err);
    }
    pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    int rc;
    do {
      rc = ::poll(&pfd, 1,
                  static_cast<int>(std::min<std::uint64_t>(timeout_ms,
                                                           INT_MAX)));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      close();
      throw ServingError(ErrorCode::kDeadlineExceeded,
                         "net: connect to " + peer + " timed out after " +
                             std::to_string(timeout_ms) + " ms");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (rc < 0 ||
        ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0) {
      const std::string err = std::strerror(errno);
      close();
      throw ServingError(ErrorCode::kIo,
                         "net: connect to " + peer + " failed: " + err);
    }
    if (soerr != 0) {
      close();
      throw ServingError(ErrorCode::kIo, "net: connect to " + peer +
                                             " failed: " +
                                             std::strerror(soerr));
    }
  }
  if (timeout_ms != 0 && flags >= 0) (void)::fcntl(fd_, F_SETFL, flags);
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms != 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  in_ = FrameReassembler();
  next_request_id_ = 1;
}

void NetClient::send_frame(std::span<const std::uint8_t> payload) {
  if (fd_ < 0) throw ServingError(ErrorCode::kIo, "net: not connected");
  const std::vector<std::uint8_t> frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      close();
      throw ServingError(ErrorCode::kIo, "net: send failed: " + err);
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> NetClient::recv_frame() {
  if (fd_ < 0) throw ServingError(ErrorCode::kIo, "net: not connected");
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    if (auto payload = in_.next(); payload.has_value()) return *payload;
    if (in_.error()) {
      close();
      throw ServingError(ErrorCode::kCorrupt,
                         "net: malformed frame: " + in_.error_message());
    }
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n == 0) {
      close();
      throw ServingError(ErrorCode::kIo, "net: server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const ErrorCode code = (errno == EAGAIN || errno == EWOULDBLOCK)
                                 ? ErrorCode::kDeadlineExceeded
                                 : ErrorCode::kIo;
      const std::string err = std::strerror(errno);
      close();
      throw ServingError(code, "net: recv failed: " + err);
    }
    in_.feed({buf.data(), static_cast<std::size_t>(n)});
  }
}

HelloAckMsg NetClient::hello(SchemeKind scheme, std::uint8_t version) {
  HelloMsg msg;
  msg.version = version;
  msg.scheme = scheme;
  send_frame(msg.encode());
  const auto payload = recv_frame();
  const ParsedFrame frame = parse_frame(payload);
  if (frame.type == MsgType::kStatus) throw_status(StatusMsg::decode(frame.body));
  if (frame.type != MsgType::kHelloAck) {
    throw ServingError(ErrorCode::kCorrupt, "net: expected hello-ack");
  }
  return HelloAckMsg::decode(frame.body);
}

AuthAckMsg NetClient::auth_signed(std::span<const std::uint8_t> query,
                                  const std::string& issuer,
                                  std::span<const std::uint8_t> sig) {
  AuthMsg msg;
  msg.mode = AuthMsg::Mode::kSigned;
  msg.query.assign(query.begin(), query.end());
  msg.issuer = issuer;
  msg.sig.assign(sig.begin(), sig.end());
  send_frame(msg.encode());
  const auto payload = recv_frame();
  const ParsedFrame frame = parse_frame(payload);
  if (frame.type == MsgType::kStatus) throw_status(StatusMsg::decode(frame.body));
  if (frame.type != MsgType::kAuthAck) {
    throw ServingError(ErrorCode::kCorrupt, "net: expected auth-ack");
  }
  return AuthAckMsg::decode(frame.body);
}

AuthAckMsg NetClient::auth_unchecked(std::span<const std::uint8_t> query) {
  AuthMsg msg;
  msg.mode = AuthMsg::Mode::kUnchecked;
  msg.query.assign(query.begin(), query.end());
  send_frame(msg.encode());
  const auto payload = recv_frame();
  const ParsedFrame frame = parse_frame(payload);
  if (frame.type == MsgType::kStatus) throw_status(StatusMsg::decode(frame.body));
  if (frame.type != MsgType::kAuthAck) {
    throw ServingError(ErrorCode::kCorrupt, "net: expected auth-ack");
  }
  return AuthAckMsg::decode(frame.body);
}

RemoteResult NetClient::search(std::uint64_t deadline_ms, bool partial_ok) {
  SearchMsg msg;
  msg.request_id = next_request_id_++;
  msg.deadline_ms = deadline_ms;
  msg.partial_ok = partial_ok;
  send_frame(msg.encode());

  RemoteResult result;
  for (;;) {
    const auto payload = recv_frame();
    const ParsedFrame frame = parse_frame(payload);
    switch (frame.type) {
      case MsgType::kResultChunk: {
        ResultChunkMsg chunk = ResultChunkMsg::decode(frame.body);
        if (chunk.request_id != msg.request_id) {
          throw ServingError(ErrorCode::kCorrupt,
                             "net: result chunk for unknown request");
        }
        result.refs.insert(result.refs.end(),
                           std::make_move_iterator(chunk.refs.begin()),
                           std::make_move_iterator(chunk.refs.end()));
        break;
      }
      case MsgType::kResultEnd: {
        const ResultEndMsg end = ResultEndMsg::decode(frame.body);
        if (end.request_id != msg.request_id) {
          throw ServingError(ErrorCode::kCorrupt,
                             "net: result end for unknown request");
        }
        result.status = end.status;
        result.flags = end.flags;
        result.scanned = end.scanned;
        result.matched = end.matched;
        result.wall_us = end.wall_us;
        result.message = end.message;
        return result;
      }
      case MsgType::kStatus:
        throw_status(StatusMsg::decode(frame.body));
      default:
        throw ServingError(ErrorCode::kCorrupt,
                           "net: unexpected frame mid-search");
    }
  }
}

ShardRemoteResult NetClient::shard_search(
    std::span<const std::uint32_t> shards, std::uint64_t map_version,
    std::uint32_t total_shards, std::uint64_t deadline_ms, bool partial_ok) {
  ShardSearchMsg msg;
  msg.request_id = next_request_id_++;
  msg.deadline_ms = deadline_ms;
  msg.partial_ok = partial_ok;
  msg.map_version = map_version;
  msg.total_shards = total_shards;
  msg.shards.assign(shards.begin(), shards.end());
  send_frame(msg.encode());

  ShardRemoteResult result;
  for (;;) {
    const auto payload = recv_frame();
    const ParsedFrame frame = parse_frame(payload);
    switch (frame.type) {
      case MsgType::kShardChunk: {
        ShardChunkMsg chunk = ShardChunkMsg::decode(frame.body);
        if (chunk.request_id != msg.request_id) {
          throw ServingError(ErrorCode::kCorrupt,
                             "net: shard chunk for unknown request");
        }
        result.hits.insert(result.hits.end(),
                           std::make_move_iterator(chunk.hits.begin()),
                           std::make_move_iterator(chunk.hits.end()));
        break;
      }
      case MsgType::kResultEnd: {
        const ResultEndMsg end = ResultEndMsg::decode(frame.body);
        if (end.request_id != msg.request_id) {
          throw ServingError(ErrorCode::kCorrupt,
                             "net: result end for unknown request");
        }
        result.status = end.status;
        result.flags = end.flags;
        result.scanned = end.scanned;
        result.matched = end.matched;
        result.wall_us = end.wall_us;
        result.message = end.message;
        return result;
      }
      case MsgType::kStatus:
        throw_status(StatusMsg::decode(frame.body));
      default:
        throw ServingError(ErrorCode::kCorrupt,
                           "net: unexpected frame mid-search");
    }
  }
}

PongMsg NetClient::ping() {
  PingMsg msg;
  msg.seq = next_request_id_++;
  send_frame(msg.encode());
  const auto payload = recv_frame();
  const ParsedFrame frame = parse_frame(payload);
  if (frame.type == MsgType::kStatus) throw_status(StatusMsg::decode(frame.body));
  if (frame.type != MsgType::kPong) {
    throw ServingError(ErrorCode::kCorrupt, "net: expected pong");
  }
  const PongMsg pong = PongMsg::decode(frame.body);
  if (pong.seq != msg.seq) {
    throw ServingError(ErrorCode::kCorrupt, "net: pong for unknown ping");
  }
  return pong;
}

MapUpdateAckMsg NetClient::push_map(std::span<const std::uint8_t> map_bytes) {
  MapUpdateMsg msg;
  msg.map_bytes.assign(map_bytes.begin(), map_bytes.end());
  send_frame(msg.encode());
  const auto payload = recv_frame();
  const ParsedFrame frame = parse_frame(payload);
  if (frame.type == MsgType::kStatus) throw_status(StatusMsg::decode(frame.body));
  if (frame.type != MsgType::kMapUpdateAck) {
    throw ServingError(ErrorCode::kCorrupt, "net: expected map-update-ack");
  }
  return MapUpdateAckMsg::decode(frame.body);
}

void NetClient::abort() noexcept {
  std::lock_guard lk(lifecycle_mu_);
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_RDWR);
}

}  // namespace apks::net
