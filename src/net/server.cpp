#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/failpoint.h"
#include "hpe/serialize.h"

namespace apks::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Evaluates a net.* failpoint; a kThrow arming counts as a fire instead of
// letting FailpointError escape the io loop thread.
bool net_failpoint_fired(const char* site) {
  try {
    return failpoint(site).fired();
  } catch (const FailpointError&) {
    return true;
  }
}

}  // namespace

// Per-connection state, touched only by the owning io loop thread — except
// `closed` and `cancel`, which worker threads read (and stop() fires).
struct NetServer::Conn {
  int fd = -1;
  std::size_t loop = 0;
  enum class State : std::uint8_t { kAwaitHello, kReady };
  State state = State::kAwaitHello;
  // Negotiated at hello: the session speaks min(client, server) semantics.
  // v1 sessions never see the v2 shard messages.
  std::uint8_t version = kNetVersion;
  bool authed = false;
  bool failed = false;            // terminal status queued; input ignored
  bool close_after_flush = false;
  bool want_write = false;
  std::atomic<bool> closed{false};
  // Fired on disconnect/shutdown: every inflight engine batch for this
  // connection carries this token and stops at its next block boundary.
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);
  FrameReassembler in;
  std::deque<std::vector<std::uint8_t>> out;
  std::size_t out_head = 0;   // sent prefix of out.front()
  std::size_t out_bytes = 0;  // total queued bytes
  AnyQuery query;             // the session's verified query
  QueryDigest digest{};
};

struct NetServer::IoLoop {
  int epfd = -1;
  int wakeup_fd = -1;
  std::mutex tasks_mutex;
  std::deque<std::function<void()>> tasks;
  std::atomic<bool> stop{false};
  std::unordered_map<int, std::shared_ptr<Conn>> conns;

  // Thread-safe: enqueue a task for the loop thread and wake its epoll.
  void post(std::function<void()> fn) {
    {
      std::lock_guard lock(tasks_mutex);
      tasks.push_back(std::move(fn));
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(wakeup_fd, &one, sizeof(one));
  }

  void run_tasks() {
    for (;;) {
      std::function<void()> fn;
      {
        std::lock_guard lock(tasks_mutex);
        if (tasks.empty()) return;
        fn = std::move(tasks.front());
        tasks.pop_front();
      }
      fn();
    }
  }
};

NetServer::NetServer(const SearchEngine& engine, NetServerOptions options)
    : engine_(&engine),
      verifier_(&engine.server().verifier()),
      backend_(&engine.server().backend()),
      options_(options),
      shard_set_(options.shard_set) {
  if (options_.io_threads == 0) options_.io_threads = 1;
  if (options_.worker_threads == 0) options_.worker_threads = 1;
  if (options_.result_chunk_refs == 0) options_.result_chunk_refs = 256;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw ServingError(ErrorCode::kIo, "net: socket() failed: " +
                                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw ServingError(ErrorCode::kIo, "net: bad listen host " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw ServingError(ErrorCode::kIo, "net: bind/listen on " + options_.host +
                                           ":" + std::to_string(options_.port) +
                                           " failed: " + err);
  }
  socklen_t len = sizeof(addr);
  (void)::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);

  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<IoLoop>();
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wakeup_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wakeup_fd;
    (void)::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->wakeup_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  // The listener lives on loop 0.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  (void)::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);

  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    io_threads_.emplace_back([this, i] { io_thread_main(i); });
  }
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { worker_thread_main(); });
  }
}

NetServer::~NetServer() { stop(0); }

// --- io loop ----------------------------------------------------------------

void NetServer::io_thread_main(std::size_t loop_index) {
  IoLoop& loop = *loops_[loop_index];
  std::array<epoll_event, 64> events;
  while (!loop.stop.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(loop.epfd, events.data(),
                     static_cast<int>(events.size()), /*timeout_ms=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wakeup_fd) {
        std::uint64_t drained = 0;
        while (::read(loop.wakeup_fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (loop_index == 0 && fd == listen_fd_) {
        accept_ready();
        continue;
      }
      const auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      const std::shared_ptr<Conn> conn = it->second;  // keep alive
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(loop, conn);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) handle_readable(loop, conn);
      if (!conn->closed.load(std::memory_order_relaxed) &&
          (events[i].events & EPOLLOUT) != 0) {
        handle_writable(loop, conn);
      }
    }
    loop.run_tasks();
  }
  // Drain any posted-but-unrun tasks, then close every connection this
  // loop still owns (best-effort shutdown notice already queued by stop()).
  loop.run_tasks();
  const auto conns = loop.conns;  // close_conn mutates the map
  for (const auto& [fd, conn] : conns) close_conn(loop, conn);
}

void NetServer::accept_ready() {
  for (;;) {
    if (!accepting_.load(std::memory_order_acquire)) return;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or a transient error: epoll re-arms us
    if (net_failpoint_fired(kSiteAccept)) {
      ::close(fd);
      bump(&NetServerStats::refused_connections);
      continue;
    }
    if (options_.max_connections != 0 &&
        open_conns_.load(std::memory_order_relaxed) >=
            options_.max_connections) {
      // Best-effort refusal notice: the fd is fresh, its socket buffer is
      // empty, so the single frame either fits or the client is gone.
      const auto frame = encode_frame(
          StatusMsg{WireStatus::kOverloaded, "connection limit reached"}
              .encode());
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      bump(&NetServerStats::refused_connections);
      continue;
    }
    set_nodelay(fd);
    bump(&NetServerStats::accepted);
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    auto install = [this, target, fd] {
      IoLoop& loop = *loops_[target];
      auto conn = std::make_shared<Conn>();
      conn->fd = fd;
      conn->loop = target;
      loop.conns.emplace(fd, conn);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      (void)::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, fd, &ev);
    };
    if (target == 0) {
      install();
    } else {
      loops_[target]->post(std::move(install));
    }
  }
}

void NetServer::handle_readable(IoLoop& loop,
                                const std::shared_ptr<Conn>& conn) {
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    if (net_failpoint_fired(kSiteRead)) {
      close_conn(loop, conn);
      return;
    }
    const ssize_t n = ::recv(conn->fd, buf.data(), buf.size(), 0);
    if (n == 0) {  // peer closed — mid-stream disconnects land here
      close_conn(loop, conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(loop, conn);
      return;
    }
    bump(&NetServerStats::bytes_in, static_cast<std::uint64_t>(n));
    conn->in.feed({buf.data(), static_cast<std::size_t>(n)});
    if (static_cast<std::size_t>(n) < buf.size()) break;
  }
  while (!conn->closed.load(std::memory_order_relaxed) && !conn->failed) {
    auto payload = conn->in.next();
    if (!payload.has_value()) break;
    bump(&NetServerStats::frames_in);
    handle_payload(loop, conn, *payload);
  }
  if (!conn->closed.load(std::memory_order_relaxed) && conn->in.error()) {
    bump(&NetServerStats::protocol_errors);
    fail_conn(loop, conn, WireStatus::kCorrupt,
              "frame error: " + conn->in.error_message());
  }
}

void NetServer::handle_payload(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                               std::span<const std::uint8_t> payload) {
  ParsedFrame frame{};
  try {
    frame = parse_frame(payload);
    switch (conn->state) {
      case Conn::State::kAwaitHello: {
        if (frame.type != MsgType::kHello) {
          throw std::invalid_argument("expected hello");
        }
        const HelloMsg hello = HelloMsg::decode(frame.body);
        HelloAckMsg ack;
        ack.scheme = backend_->kind();
        ack.records = served_records();
        if (hello.version < kNetVersionMin || hello.version > kNetVersion) {
          ack.status = WireStatus::kBadRequest;
          ack.message = "protocol version " + std::to_string(hello.version) +
                        " unsupported (server speaks " +
                        std::to_string(kNetVersionMin) + ".." +
                        std::to_string(kNetVersion) + ")";
        } else if (hello.scheme != backend_->kind()) {
          ack.status = WireStatus::kBadRequest;
          ack.message = "scheme mismatch: client '" +
                        std::string(scheme_name(hello.scheme)) +
                        "', server '" +
                        std::string(scheme_name(backend_->kind())) + "'";
        }
        if (ack.status == WireStatus::kOk) {
          // Speak the client's version for the rest of the session; the
          // echoed ack version is the negotiation result.
          conn->version = hello.version;
          ack.version = hello.version;
        }
        send_frame(loop, conn, encode_frame(ack.encode()));
        if (ack.status != WireStatus::kOk) {
          bump(&NetServerStats::protocol_errors);
          conn->failed = true;
          conn->close_after_flush = true;
          flush_writes(loop, conn);
        } else {
          conn->state = Conn::State::kReady;
        }
        return;
      }
      case Conn::State::kReady:
        switch (frame.type) {
          case MsgType::kAuth:
            handle_auth(loop, conn, AuthMsg::decode(frame.body));
            return;
          case MsgType::kSearch:
            handle_search(loop, conn, SearchMsg::decode(frame.body));
            return;
          case MsgType::kShardSearch:
            if (conn->version < 2) {
              throw std::invalid_argument(
                  "shard search requires protocol version 2");
            }
            handle_shard_search(loop, conn,
                                ShardSearchMsg::decode(frame.body));
            return;
          case MsgType::kPing: {
            if (conn->version < 3) {
              throw std::invalid_argument(
                  "ping requires protocol version 3");
            }
            // Answered inline on the io thread, before auth: a heartbeat
            // measures event-loop liveness, not scan backlog or session
            // credentials.
            const PingMsg ping = PingMsg::decode(frame.body);
            PongMsg pong;
            pong.seq = ping.seq;
            const auto set = shard_set();
            pong.map_version = set != nullptr ? set->map_version : 0;
            pong.inflight = static_cast<std::uint32_t>(
                inflight_jobs_.load(std::memory_order_relaxed));
            send_frame(loop, conn, encode_frame(pong.encode()));
            return;
          }
          case MsgType::kMapUpdate:
            if (conn->version < 3) {
              throw std::invalid_argument(
                  "map update requires protocol version 3");
            }
            handle_map_update(loop, conn, MapUpdateMsg::decode(frame.body));
            return;
          default:
            throw std::invalid_argument("unexpected message type");
        }
    }
  } catch (const std::exception& ex) {
    bump(&NetServerStats::protocol_errors);
    fail_conn(loop, conn, WireStatus::kBadRequest, ex.what());
  }
}

void NetServer::handle_auth(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                            const AuthMsg& msg) {
  AuthAckMsg ack;
  AnyQuery query;
  try {
    query = backend_->decode_query(msg.query);
  } catch (const std::exception& ex) {
    ack.status = WireStatus::kBadRequest;
    ack.message = std::string("query rejected: ") + ex.what();
  }
  if (ack.status == WireStatus::kOk) {
    if (msg.mode == AuthMsg::Mode::kSigned) {
      try {
        ByteReader r(msg.sig);
        SignedQuery sq;
        sq.query = query;
        sq.issuer = msg.issuer;
        sq.sig.u = read_point(backend_->pairing().curve(), r);
        sq.sig.v = read_point(backend_->pairing().curve(), r);
        if (!r.done()) {
          throw std::invalid_argument("signature trailing bytes");
        }
        if (!verifier_->verify(*backend_, sq)) {
          ack.status = WireStatus::kUnauthorized;
          ack.message = "authority signature rejected";
        }
      } catch (const std::exception& ex) {
        ack.status = WireStatus::kBadRequest;
        ack.message = std::string("signature rejected: ") + ex.what();
      }
    } else if (!options_.allow_unchecked) {
      ack.status = WireStatus::kUnauthorized;
      ack.message = "server requires signed session queries";
    }
  }
  if (ack.status == WireStatus::kOk) {
    conn->query = std::move(query);
    conn->digest = backend_->digest(conn->query);
    conn->authed = true;
    ack.digest = conn->digest;
    bump(&NetServerStats::auth_ok);
  } else {
    // A failed auth clears the session: a later search must not silently
    // ride the previous credential.
    conn->authed = false;
    conn->query = AnyQuery();
    bump(&NetServerStats::auth_rejected);
  }
  send_frame(loop, conn, encode_frame(ack.encode()));
}

void NetServer::handle_search(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                              const SearchMsg& msg) {
  const auto refuse = [&](WireStatus status, const std::string& why) {
    ResultEndMsg end;
    end.request_id = msg.request_id;
    end.status = status;
    end.message = why;
    send_frame(loop, conn, encode_frame(end.encode()));
  };
  if (!conn->authed) {
    refuse(WireStatus::kUnauthorized, "no authorized session query");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    refuse(WireStatus::kShutdown, "server is draining");
    return;
  }
  SearchJob job;
  job.conn = conn;
  job.request = msg;
  job.query = conn->query;  // copy: a re-auth never races the scan
  job.set = shard_set();    // snapshot: a map swap never races the scan
  {
    std::lock_guard lock(jobs_mutex_);
    if (jobs_closed_) {
      refuse(WireStatus::kShutdown, "server is draining");
      return;
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void NetServer::handle_shard_search(IoLoop& loop,
                                    const std::shared_ptr<Conn>& conn,
                                    const ShardSearchMsg& msg) {
  const auto refuse = [&](WireStatus status, const std::string& why) {
    ResultEndMsg end;
    end.request_id = msg.request_id;
    end.status = status;
    end.message = why;
    send_frame(loop, conn, encode_frame(end.encode()));
  };
  if (!conn->authed) {
    refuse(WireStatus::kUnauthorized, "no authorized session query");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    refuse(WireStatus::kShutdown, "server is draining");
    return;
  }
  const std::shared_ptr<const ShardEngineSet> set = shard_set();
  if (set == nullptr) {
    refuse(WireStatus::kBadRequest, "server does not serve shards");
    return;
  }
  // A coordinator holding a different map than this node must never get a
  // silently wrong (mis-scoped) answer: refuse and let it refresh.
  if (msg.map_version != set->map_version ||
      msg.total_shards != set->total_shards) {
    refuse(WireStatus::kBadRequest,
           "stale cluster map: request (v" + std::to_string(msg.map_version) +
               ", " + std::to_string(msg.total_shards) + " shards), node (v" +
               std::to_string(set->map_version) + ", " +
               std::to_string(set->total_shards) + " shards)");
    return;
  }
  for (const std::uint32_t shard : msg.shards) {
    if (shard >= set->total_shards) {
      refuse(WireStatus::kBadRequest,
             "shard " + std::to_string(shard) + " out of range");
      return;
    }
    if (set->engine_for(shard) == nullptr) {
      refuse(WireStatus::kBadRequest,
             "shard " + std::to_string(shard) + " not owned by this node");
      return;
    }
  }
  SearchJob job;
  job.conn = conn;
  job.request.request_id = msg.request_id;
  job.request.deadline_ms = msg.deadline_ms;
  job.request.partial_ok = msg.partial_ok;
  job.query = conn->query;  // copy: a re-auth never races the scan
  job.shard_scoped = true;
  job.shards = msg.shards;
  job.set = set;  // the set the request was validated against
  {
    std::lock_guard lock(jobs_mutex_);
    if (jobs_closed_) {
      refuse(WireStatus::kShutdown, "server is draining");
      return;
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void NetServer::handle_map_update(IoLoop& loop,
                                  const std::shared_ptr<Conn>& conn,
                                  MapUpdateMsg msg) {
  const auto refuse = [&](WireStatus status, const std::string& why) {
    MapUpdateAckMsg ack;
    ack.status = status;
    const auto set = shard_set();
    ack.version = set != nullptr ? set->map_version : 0;
    ack.message = why;
    send_frame(loop, conn, encode_frame(ack.encode()));
  };
  if (!options_.map_update_handler) {
    refuse(WireStatus::kBadRequest, "server does not accept map updates");
    return;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    refuse(WireStatus::kShutdown, "server is draining");
    return;
  }
  // Applying a map loads shard engines from the store — worker-pool work.
  SearchJob job;
  job.conn = conn;
  job.map_update = true;
  job.map_bytes = std::move(msg.map_bytes);
  {
    std::lock_guard lock(jobs_mutex_);
    if (jobs_closed_) {
      refuse(WireStatus::kShutdown, "server is draining");
      return;
    }
    inflight_jobs_.fetch_add(1, std::memory_order_relaxed);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

// --- worker pool ------------------------------------------------------------

void NetServer::worker_thread_main() {
  for (;;) {
    SearchJob job;
    {
      std::unique_lock lock(jobs_mutex_);
      jobs_cv_.wait(lock, [&] { return jobs_closed_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // closed and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    if (job.map_update) {
      run_map_update_job(job);
    } else {
      run_search_job(job);
    }
    inflight_jobs_.fetch_sub(1, std::memory_order_relaxed);
    drain_cv_.notify_all();
  }
}

void NetServer::run_map_update_job(const SearchJob& job) {
  MapUpdateAckMsg ack;
  try {
    ack = options_.map_update_handler(job.map_bytes);
  } catch (const std::exception& ex) {
    ack.status = WireStatus::kBadRequest;
    const auto set = shard_set();
    ack.version = set != nullptr ? set->map_version : 0;
    ack.message = std::string("map update failed: ") + ex.what();
  }
  const std::shared_ptr<Conn> conn = job.conn.lock();
  if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) return;
  std::weak_ptr<Conn> weak = conn;
  loops_[conn->loop]->post(
      [this, weak, frame = encode_frame(ack.encode())]() mutable {
        const std::shared_ptr<Conn> c = weak.lock();
        if (c == nullptr || c->closed.load(std::memory_order_relaxed)) return;
        send_frame(*loops_[c->loop], c, std::move(frame));
      });
}

void NetServer::run_search_job(const SearchJob& job) {
  const std::shared_ptr<Conn> conn = job.conn.lock();
  if (conn == nullptr || conn->closed.load(std::memory_order_acquire)) {
    return;  // client died before the scan started: no crypto runs
  }

  ServeControl control;
  control.deadline_ms = job.request.deadline_ms != 0
                            ? job.request.deadline_ms
                            : options_.default_deadline_ms;
  control.cancel = conn->cancel.get();
  // Always run the engine in partial mode: the wire layer decides whether
  // the prefix is streamed, but the outcome must arrive as a status frame,
  // not an exception.
  control.partial_ok = true;

  ResultEndMsg end;
  end.request_id = job.request.request_id;
  const bool sharded = job.set != nullptr;
  std::vector<std::vector<std::string>> results;
  std::vector<ShardHit> hits;
  BatchMetrics metrics;
  try {
    if (sharded) {
      // Shard-backed server: scan the requested shards — every owned shard
      // for a legacy kSearch session — and merge the hits by record id.
      // Everything goes through the job's snapshot of the set, so a map
      // swap mid-scan is invisible here.
      std::vector<std::uint32_t> shards = job.shards;
      if (!job.shard_scoped) {
        shards.clear();
        for (const auto& entry : job.set->shards) {
          shards.push_back(entry.first);
        }
      }
      hits = scan_shards(*job.set, shards, job.query, control, end);
    } else {
      results = engine_->search_batch_unchecked_any({&job.query, 1}, &metrics,
                                                    control);
      if (metrics.deadline_exceeded) {
        end.status = WireStatus::kDeadlineExceeded;
        end.flags |= kResultDeadlineExceeded | kResultTruncated;
      } else if (metrics.cancelled) {
        end.status = WireStatus::kCancelled;
        end.flags |= kResultCancelled | kResultTruncated;
      }
    }
  } catch (const ServingError& ex) {
    end.status = wire_status_from_error(ex.code());
    end.message = ex.what();
  } catch (const std::invalid_argument& ex) {
    end.status = WireStatus::kBadRequest;
    end.message = ex.what();
  } catch (const std::exception& ex) {
    end.status = WireStatus::kUnavailable;
    end.message = ex.what();
  }
  if (!sharded) {
    if (!metrics.per_query.empty()) {
      end.scanned = metrics.per_query[0].scanned;
      end.matched = metrics.per_query[0].matched;
    }
    end.wall_us = static_cast<std::uint64_t>(metrics.wall_s * 1e6);
  }

  switch (end.status) {
    case WireStatus::kOk:
      bump(&NetServerStats::searches_ok);
      break;
    case WireStatus::kDeadlineExceeded:
      bump(&NetServerStats::searches_deadline);
      break;
    case WireStatus::kOverloaded:
      bump(&NetServerStats::searches_overloaded);
      break;
    case WireStatus::kCancelled:
      bump(&NetServerStats::searches_cancelled);
      break;
    default:
      bump(&NetServerStats::searches_error);
      break;
  }

  // Chunked response: full results stream for kOk; deadline/cancel stream
  // the truncated-but-well-formed prefix only when the client asked for it.
  std::vector<std::vector<std::uint8_t>> frames;
  const bool stream_results =
      end.status == WireStatus::kOk ||
      ((end.flags & kResultTruncated) != 0 && job.request.partial_ok);
  if (stream_results && job.shard_scoped) {
    // v2 shard response: id-carrying hit chunks.
    for (std::size_t lo = 0; lo < hits.size();
         lo += options_.result_chunk_refs) {
      ShardChunkMsg chunk;
      chunk.request_id = job.request.request_id;
      const std::size_t hi =
          std::min(hits.size(), lo + options_.result_chunk_refs);
      for (std::size_t i = lo; i < hi; ++i) {
        chunk.hits.push_back(std::move(hits[i]));
      }
      frames.push_back(encode_frame(chunk.encode()));
    }
  } else if (stream_results && sharded) {
    // Legacy session against a shard-backed server: the merged hits drop
    // their ids and stream as plain ref chunks.
    for (std::size_t lo = 0; lo < hits.size();
         lo += options_.result_chunk_refs) {
      ResultChunkMsg chunk;
      chunk.request_id = job.request.request_id;
      const std::size_t hi =
          std::min(hits.size(), lo + options_.result_chunk_refs);
      for (std::size_t i = lo; i < hi; ++i) {
        chunk.refs.push_back(std::move(hits[i].ref));
      }
      frames.push_back(encode_frame(chunk.encode()));
    }
  } else if (stream_results && !results.empty()) {
    const std::vector<std::string>& refs = results[0];
    for (std::size_t lo = 0; lo < refs.size();
         lo += options_.result_chunk_refs) {
      ResultChunkMsg chunk;
      chunk.request_id = job.request.request_id;
      const std::size_t hi =
          std::min(refs.size(), lo + options_.result_chunk_refs);
      chunk.refs.assign(refs.begin() + static_cast<std::ptrdiff_t>(lo),
                        refs.begin() + static_cast<std::ptrdiff_t>(hi));
      frames.push_back(encode_frame(chunk.encode()));
    }
  }
  frames.push_back(encode_frame(end.encode()));

  // Hand the frames to the owning loop thread; if the connection died
  // while we scanned, they are simply dropped.
  std::weak_ptr<Conn> weak = conn;
  loops_[conn->loop]->post([this, weak, frames = std::move(frames)]() mutable {
    const std::shared_ptr<Conn> c = weak.lock();
    if (c == nullptr || c->closed.load(std::memory_order_relaxed)) return;
    IoLoop& loop = *loops_[c->loop];
    for (auto& f : frames) {
      if (c->closed.load(std::memory_order_relaxed)) break;
      send_frame(loop, c, std::move(f));
    }
  });
}

std::vector<ShardHit> NetServer::scan_shards(
    const ShardEngineSet& set, std::span<const std::uint32_t> shards,
    const AnyQuery& query, const ServeControl& control,
    ResultEndMsg& end) const {
  std::vector<ShardHit> hits;
  const auto t0 = std::chrono::steady_clock::now();
  double wall_s = 0.0;
  for (const std::uint32_t shard : shards) {
    // One deadline budget across the whole request: each shard's engine
    // gets whatever remains of it.
    ServeControl sub = control;
    if (control.deadline_ms != 0) {
      const auto elapsed_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (elapsed_ms >= control.deadline_ms) {
        end.status = WireStatus::kDeadlineExceeded;
        end.flags |= kResultDeadlineExceeded | kResultTruncated;
        break;
      }
      sub.deadline_ms = control.deadline_ms - elapsed_ms;
    }
    const SearchEngine* engine = set.engine_for(shard);  // validated upstream
    BatchMetrics metrics;
    std::vector<std::vector<std::uint64_t>> ids;
    std::vector<std::vector<std::string>> refs =
        engine->search_batch_unchecked_any_ids({&query, 1}, &ids, &metrics,
                                               sub);
    if (!metrics.per_query.empty()) {
      end.scanned += metrics.per_query[0].scanned;
      end.matched += metrics.per_query[0].matched;
    }
    wall_s += metrics.wall_s;
    if (!refs.empty()) {
      for (std::size_t i = 0; i < refs[0].size(); ++i) {
        hits.push_back(ShardHit{ids[0][i], std::move(refs[0][i])});
      }
    }
    if (metrics.deadline_exceeded) {
      end.status = WireStatus::kDeadlineExceeded;
      end.flags |= kResultDeadlineExceeded | kResultTruncated;
      break;
    }
    if (metrics.cancelled) {
      end.status = WireStatus::kCancelled;
      end.flags |= kResultCancelled | kResultTruncated;
      break;
    }
  }
  end.wall_us = static_cast<std::uint64_t>(wall_s * 1e6);
  // The same concatenate-then-sort-by-id merge ShardedStore::search_any
  // performs (ids are unique across shards), so a coordinator gluing
  // per-node hit streams back together reproduces the single-node byte
  // order exactly.
  std::sort(hits.begin(), hits.end(),
            [](const ShardHit& a, const ShardHit& b) { return a.id < b.id; });
  return hits;
}

std::uint64_t NetServer::served_records() const {
  const auto set = shard_set();
  if (set == nullptr) return engine_->server().record_count();
  std::uint64_t total = 0;
  for (const auto& entry : set->shards) {
    total += entry.second->server().record_count();
  }
  return total;
}

// --- write path -------------------------------------------------------------

void NetServer::send_frame(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                           std::vector<std::uint8_t> frame_bytes) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  conn->out_bytes += frame_bytes.size();
  conn->out.push_back(std::move(frame_bytes));
  bump(&NetServerStats::frames_out);
  if (options_.write_buffer_cap != 0 &&
      conn->out_bytes > options_.write_buffer_cap) {
    // Slow client: it is not draining its socket while we stream results.
    // Closing (instead of buffering without bound) is the backpressure of
    // last resort; the cancel token also stops any inflight scan.
    bump(&NetServerStats::slow_client_closes);
    close_conn(loop, conn);
    return;
  }
  flush_writes(loop, conn);
}

void NetServer::flush_writes(IoLoop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  while (!conn->out.empty()) {
    if (net_failpoint_fired(kSiteWrite)) {
      close_conn(loop, conn);
      return;
    }
    const std::vector<std::uint8_t>& front = conn->out.front();
    const ssize_t n =
        ::send(conn->fd, front.data() + conn->out_head,
               front.size() - conn->out_head, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(loop, conn);
      return;
    }
    bump(&NetServerStats::bytes_out, static_cast<std::uint64_t>(n));
    conn->out_head += static_cast<std::size_t>(n);
    conn->out_bytes -= static_cast<std::size_t>(n);
    if (conn->out_head == front.size()) {
      conn->out.pop_front();
      conn->out_head = 0;
    }
  }
  const bool want_write = !conn->out.empty();
  if (want_write != conn->want_write) update_epoll(loop, *conn, want_write);
  if (!want_write && conn->close_after_flush) close_conn(loop, conn);
}

void NetServer::handle_writable(IoLoop& loop,
                                const std::shared_ptr<Conn>& conn) {
  flush_writes(loop, conn);
}

void NetServer::update_epoll(IoLoop& loop, const Conn& conn, bool want_write) {
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? static_cast<std::uint32_t>(EPOLLOUT)
                                    : 0u);
  ev.data.fd = conn.fd;
  (void)::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn.fd, &ev);
  const_cast<Conn&>(conn).want_write = want_write;
}

void NetServer::fail_conn(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                          WireStatus status, const std::string& message) {
  if (conn->closed.load(std::memory_order_relaxed)) return;
  conn->failed = true;
  conn->close_after_flush = true;
  send_frame(loop, conn, encode_frame(StatusMsg{status, message}.encode()));
  flush_writes(loop, conn);
}

void NetServer::close_conn(IoLoop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  // The disconnect IS the cancellation: any engine batch still scanning for
  // this connection stops at its next block boundary and its worker drops
  // the result frames — no inflight slot survives the peer.
  conn->cancel->store(true, std::memory_order_release);
  (void)::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd, nullptr);
  (void)::close(conn->fd);
  loop.conns.erase(conn->fd);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  bump(&NetServerStats::closed);
}

// --- shutdown ---------------------------------------------------------------

void NetServer::stop(std::uint64_t grace_ms) {
  std::lock_guard stop_lock(stop_mutex_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  accepting_.store(false, std::memory_order_release);

  // 1. Stop accepting: pull the listener out of loop 0 (on its thread).
  loops_[0]->post([this] {
    if (listen_fd_ >= 0) {
      (void)::epoll_ctl(loops_[0]->epfd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      (void)::close(listen_fd_);
      listen_fd_ = -1;
    }
  });

  // 2. Drain: give inflight batches a grace window to finish honestly.
  if (grace_ms != 0) {
    std::unique_lock lock(drain_mutex_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(grace_ms), [&] {
      return inflight_jobs_.load(std::memory_order_relaxed) == 0;
    });
  }

  // 3. Whatever is still scanning gets deadline-cancelled through the
  // connection tokens; idle connections get a shutdown notice.
  for (const auto& loop : loops_) {
    loop->post([this, loop = loop.get()] {
      const auto conns = loop->conns;
      for (const auto& [fd, conn] : conns) {
        conn->cancel->store(true, std::memory_order_release);
        if (!conn->failed) {
          conn->failed = true;
          conn->close_after_flush = true;
          send_frame(*loop, conn,
                     encode_frame(StatusMsg{WireStatus::kShutdown,
                                            "server shutting down"}
                                      .encode()));
          flush_writes(*loop, conn);
        }
      }
    });
  }

  // 4. Close the job queue and join the workers (cancelled scans return at
  // their next block boundary, so this converges quickly).
  {
    std::lock_guard lock(jobs_mutex_);
    jobs_closed_ = true;
  }
  jobs_cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();

  // 5. Stop the io loops (each closes its remaining connections on exit).
  for (const auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_release);
    loop->post([] {});  // wake
  }
  for (auto& t : io_threads_) t.join();
  io_threads_.clear();
  for (const auto& loop : loops_) {
    if (loop->epfd >= 0) ::close(loop->epfd);
    if (loop->wakeup_fd >= 0) ::close(loop->wakeup_fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  stopped_.store(true, std::memory_order_release);
}

}  // namespace apks::net
