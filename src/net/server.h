// NetServer — the epoll front end that turns SearchEngine into a network
// service (DESIGN.md §5h).
//
// Architecture:
//
//   listener ──▶ io loop 0 ┐                       ┌─▶ SearchEngine batch
//               io loop 1  ├─ nonblocking sockets, │   (deadline, cancel,
//               ...        │  per-connection       │    max_inflight all
//               io loop N  ┘  frame reassembly ────┴─▶  engine-enforced)
//                                ▲        │ search jobs      │
//                                │        ▼                  ▼
//                              write   worker pool ──▶ chunked result
//                              queues  (blocking scans)  frames, posted
//                                                        back to the loop
//
// Each accepted connection is owned by exactly one io loop (round-robin):
// only that loop thread touches its fd, read buffer and write queue, so
// connection state needs no locks. Scans are seconds-long and must never
// block an io loop, so complete kSearch frames are handed to a small pool
// of worker threads that run the engine and post the ready-to-send frames
// back to the owning loop (eventfd wakeup).
//
// End-to-end backpressure is the engine's own machinery, surfaced on the
// wire: per-request deadlines → kDeadlineExceeded status frames (with the
// truncated-but-well-formed prefix streamed first when the client asked
// partial_ok), max_inflight admission → kOverloaded, and a client that
// disconnects mid-batch fires its connection's cancellation token so the
// engine abandons the scan at the next block boundary — no leaked inflight
// slots, no work for a peer that will never read it. Slow clients are
// bounded by a per-connection write-buffer cap (the connection is closed
// rather than buffering unboundedly).
//
// Graceful shutdown (`stop`): close the listener, give inflight batches a
// grace window to finish, then fire every connection's cancellation token
// and join the workers — the drain path `apks_cli serve` runs on
// SIGINT/SIGTERM.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "auth/authority.h"
#include "cloud/search_engine.h"
#include "net/wire.h"

namespace apks::net {

// Failpoint sites threaded through the server's socket I/O (chaos tests arm
// them): kError on accept drops the incoming connection, on read/write it
// fails the syscall and closes the connection; kDelay stalls the io loop —
// the slow-network case.
inline constexpr const char* kSiteAccept = "net.accept";
inline constexpr const char* kSiteRead = "net.read";
inline constexpr const char* kSiteWrite = "net.write";

// Cluster node role (DESIGN.md §5i): the shards this server instance owns
// under one ClusterMap, each backed by its own SearchEngine over exactly
// that shard's records. A server constructed with a ShardEngineSet answers
// v2 kShardSearch requests shard-by-shard (hits keep their record ids so a
// coordinator can k-way merge across nodes) and serves legacy v1 kSearch
// sessions by scanning every owned shard and merging locally by id — old
// clients keep working against a cluster node, they just see the node's
// subset of the store.
//
// The set is held by shared_ptr and swappable at runtime (set_shard_set):
// every search job snapshots the pointer when it is dispatched, so a live
// map reconfiguration lets in-flight scans finish against the engines they
// started on while new requests see the new placement — the graceful
// handoff of DESIGN.md §5j. The engines a set points at must stay alive as
// long as any snapshot of that set exists (the cluster node bundles them
// into one shared ownership block).
struct ShardEngineSet {
  std::uint64_t map_version = 0;
  std::uint32_t total_shards = 0;
  std::vector<std::pair<std::uint32_t, const SearchEngine*>> shards;

  [[nodiscard]] const SearchEngine* engine_for(
      std::uint32_t shard) const noexcept {
    for (const auto& [owned, engine] : shards) {
      if (owned == shard) return engine;
    }
    return nullptr;
  }
};

struct NetServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (read back via port())
  std::size_t io_threads = 2;
  std::size_t worker_threads = 2;
  // Accept kUnchecked auth (raw queries with no authority signature) — the
  // CLI/bench deployments where authorization happens out of band. Off by
  // default: a library user must opt in explicitly.
  bool allow_unchecked = false;
  // Matched doc_refs per kResultChunk frame (streaming granularity).
  std::size_t result_chunk_refs = 256;
  // Close a connection whose pending write queue exceeds this many bytes —
  // the slow-client bound. 0 = unlimited.
  std::size_t write_buffer_cap = 64u << 20;
  // Default per-request deadline when the client sends 0 (0 = engine
  // default).
  std::uint64_t default_deadline_ms = 0;
  // Refuse new connections beyond this many concurrently open (0 =
  // unlimited); refused connections get a kOverloaded status frame.
  std::size_t max_connections = 0;
  // Cluster node role: when set, this server owns the listed shards and
  // serves kShardSearch (see ShardEngineSet above). The ctor engine is
  // still the source of the session backend/verifier and must outlive
  // every installed set (the cluster node anchors it separately from the
  // per-shard engines precisely so set swaps never dangle it). nullptr =
  // plain single-store server.
  std::shared_ptr<const ShardEngineSet> shard_set;
  // Live map reconfiguration hook (v3 kMapUpdate): called on a worker
  // thread with the raw serialized-ClusterMap bytes; the handler validates
  // and applies them (typically ending in set_shard_set) and returns the
  // ack to send. Unset = the server refuses map updates with kBadRequest.
  // The net layer deliberately treats the map as opaque bytes — it must
  // not depend on cluster types.
  std::function<MapUpdateAckMsg(const std::vector<std::uint8_t>&)>
      map_update_handler;
};

// Lifetime counters, snapshot under one lock (same contract as
// EngineCounters).
struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t refused_connections = 0;  // over max_connections
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t protocol_errors = 0;  // bad frames / bad messages
  std::uint64_t auth_ok = 0;
  std::uint64_t auth_rejected = 0;
  std::uint64_t searches_ok = 0;
  std::uint64_t searches_deadline = 0;
  std::uint64_t searches_overloaded = 0;
  std::uint64_t searches_cancelled = 0;  // client died / shutdown mid-batch
  std::uint64_t searches_error = 0;      // other serving errors
  std::uint64_t slow_client_closes = 0;  // write_buffer_cap exceeded
};

class NetServer {
 public:
  // The engine (and the CloudServer/verifier behind it) must outlive the
  // NetServer; the session-auth check uses the CloudServer's registered
  // CapabilityVerifier. The ctor binds and listens; io/worker threads
  // start immediately. Throws ServingError(kIo) when the bind fails.
  explicit NetServer(const SearchEngine& engine,
                     NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // The bound port (after an ephemeral bind) and host.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const std::string& host() const noexcept {
    return options_.host;
  }

  // Graceful shutdown: stop accepting, wait up to `grace_ms` for inflight
  // search batches to finish, then fire every connection's cancellation
  // token (the engine stops at the next block boundary), flush a kShutdown
  // status to idle connections and join all threads. Idempotent.
  void stop(std::uint64_t grace_ms = 0);

  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  [[nodiscard]] NetServerStats stats() const {
    std::lock_guard lock(stats_mutex_);
    return stats_;
  }

  // The shard set new requests are validated and served against (nullptr
  // for a plain server). Thread-safe.
  [[nodiscard]] std::shared_ptr<const ShardEngineSet> shard_set() const {
    std::lock_guard lock(shard_set_mutex_);
    return shard_set_;
  }
  // Installs a new shard set: requests dispatched after this see the new
  // placement; jobs already dispatched finish against their snapshot of
  // the old one. Thread-safe (the map-update handler calls it from a
  // worker thread).
  void set_shard_set(std::shared_ptr<const ShardEngineSet> set) {
    std::lock_guard lock(shard_set_mutex_);
    shard_set_ = std::move(set);
  }
  // Search jobs currently running or queued on the worker pool.
  [[nodiscard]] std::size_t inflight_jobs() const noexcept {
    return inflight_jobs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t open_connections() const noexcept {
    return open_conns_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;
  struct IoLoop;
  struct SearchJob {
    std::weak_ptr<Conn> conn;
    SearchMsg request;
    AnyQuery query;  // copied at dispatch: an auth swap never races a scan
    // kShardSearch jobs: reply with ShardChunkMsg frames (id-carrying hits)
    // for exactly these shards. Legacy jobs on a shard-backed server scan
    // every owned shard instead and reply with plain ResultChunkMsg frames.
    bool shard_scoped = false;
    std::vector<std::uint32_t> shards;
    // The shard set this job was validated against, snapshotted at
    // dispatch: a concurrent set_shard_set never invalidates a running
    // scan (graceful handoff).
    std::shared_ptr<const ShardEngineSet> set;
    // kMapUpdate jobs ride the same worker queue (applying a map loads
    // shard engines — far too slow for an io loop thread).
    bool map_update = false;
    std::vector<std::uint8_t> map_bytes;
  };

  void io_thread_main(std::size_t loop_index);
  void worker_thread_main();

  void accept_ready();
  void handle_readable(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void handle_writable(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void handle_payload(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                      std::span<const std::uint8_t> payload);
  void handle_auth(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                   const AuthMsg& msg);
  void handle_search(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                     const SearchMsg& msg);
  void handle_shard_search(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                           const ShardSearchMsg& msg);
  void handle_map_update(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                         MapUpdateMsg msg);
  void run_search_job(const SearchJob& job);
  void run_map_update_job(const SearchJob& job);
  // Scan the given shards' engines (from `set`, the job's snapshot)
  // sequentially under one deadline budget, merging hits ascending by
  // record id (the same concatenate-then-sort a single-node ShardedStore
  // scan performs). Fills `end` with the aggregated outcome; throws what
  // the engines throw.
  [[nodiscard]] std::vector<ShardHit> scan_shards(
      const ShardEngineSet& set, std::span<const std::uint32_t> shards,
      const AnyQuery& query, const ServeControl& control,
      ResultEndMsg& end) const;
  // Total records across the serving engines (summed over owned shards for
  // a shard-backed server) — the hello ack's record count.
  [[nodiscard]] std::uint64_t served_records() const;

  // Enqueue an encoded frame on the connection's write queue and try to
  // flush (loop thread only).
  void send_frame(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                  std::vector<std::uint8_t> frame_bytes);
  // Send a terminal status frame, then close.
  void fail_conn(IoLoop& loop, const std::shared_ptr<Conn>& conn,
                 WireStatus status, const std::string& message);
  void close_conn(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void flush_writes(IoLoop& loop, const std::shared_ptr<Conn>& conn);
  void update_epoll(IoLoop& loop, const Conn& conn, bool want_write);

  void bump(std::uint64_t NetServerStats::* field, std::uint64_t by = 1) const {
    std::lock_guard lock(stats_mutex_);
    stats_.*field += by;
  }

  const SearchEngine* engine_;
  const CapabilityVerifier* verifier_;
  const SearchBackend* backend_;
  NetServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::vector<std::unique_ptr<IoLoop>> loops_;
  std::vector<std::thread> io_threads_;
  std::vector<std::thread> workers_;

  // Worker queue.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<SearchJob> jobs_;
  bool jobs_closed_ = false;
  std::atomic<std::size_t> inflight_jobs_{0};
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;

  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<bool> accepting_{true};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::mutex stop_mutex_;

  mutable std::mutex stats_mutex_;
  mutable NetServerStats stats_;

  mutable std::mutex shard_set_mutex_;
  std::shared_ptr<const ShardEngineSet> shard_set_;
};

}  // namespace apks::net
