// Binary wire protocol of the network serving layer (DESIGN.md §5h).
//
// Everything on the wire is a *frame* — the same shape as a segment-file
// record (store/segment.h), because the hostile-input lessons carry over
// unchanged:
//
//   [u32 len] [u32 crc32(payload)] [payload: len bytes]
//
// All integers little-endian (ByteWriter convention). `len` is capped at
// kMaxFramePayload (64 MiB, shared with the segment format) so a hostile
// length field is a protocol error, never an allocation. The payload's
// first byte is the message type; the body is ByteWriter-encoded.
//
// A connection opens with a handshake frame carrying the protocol magic
// "APKSNET1", the protocol version, and the client's scheme tag — the
// server refuses version and scheme mismatches before any crypto bytes are
// parsed. Session establishment then carries SignedQuery authorization:
// the client sends its query (backend wire codec) plus the issuing
// authority's IBS signature once; the server verifies it once and every
// subsequent kSearch on the connection reuses the verified session query
// (digest-keyed through the engine's PreparedQueryCache).
//
// Responses stream: matched doc_refs are flushed in bounded kResultChunk
// frames and the terminal kResultEnd carries the wire status plus the
// SearchStats-equivalent counters, so a deadline or shed request yields a
// truncated-but-well-formed prefix, not a broken stream.
//
// Status codes map the serving ErrorCode taxonomy (core/backend.h) 1:1 —
// the numeric values are identical for codes 1..7 — with protocol-level
// additions (kOk, kUnauthorized, kBadRequest, kShutdown) above them.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "core/backend.h"
#include "store/segment.h"  // kMaxFramePayload — shared hostile-length cap

namespace apks::net {

inline constexpr char kNetMagic[8] = {'A', 'P', 'K', 'S', 'N', 'E', 'T', '1'};
// Version 2 adds the shard-scoped search messages of cluster mode
// (kShardSearch / kShardChunk). Version 3 adds the self-healing control
// plane: kPing/kPong heartbeats and kMapUpdate/kMapUpdateAck live
// cluster-map propagation. The server still accepts version-1 hellos —
// a session negotiates the client's version and newer-only messages on an
// old session are a kBadRequest, so pre-cluster clients keep working
// unchanged.
inline constexpr std::uint8_t kNetVersion = 3;
inline constexpr std::uint8_t kNetVersionMin = 1;
inline constexpr std::size_t kWireFrameHeaderSize = 4 + 4;
// One cap for disk frames and wire frames: no legitimate message (a query
// key, a chunk of doc_refs) comes anywhere near it.
inline constexpr std::uint32_t kMaxWirePayload = kMaxFramePayload;

// --- status codes -----------------------------------------------------------

enum class WireStatus : std::uint8_t {
  kOk = 0,
  // 1..7 mirror ErrorCode numerically; wire_status_from_error is the
  // checked bridge.
  kIo = 1,
  kCorrupt = 2,
  kUnavailable = 3,
  kExhausted = 4,
  kOverloaded = 5,
  kDeadlineExceeded = 6,
  kCancelled = 7,
  // Protocol-level outcomes with no ErrorCode counterpart.
  kUnauthorized = 8,  // signature rejected / no authorized session query
  kBadRequest = 9,    // malformed message, version/scheme mismatch
  kShutdown = 10,     // server is draining; connection is about to close
};

[[nodiscard]] std::string_view wire_status_name(WireStatus status) noexcept;
[[nodiscard]] WireStatus wire_status_from_error(ErrorCode code) noexcept;

// --- message types ----------------------------------------------------------

enum class MsgType : std::uint8_t {
  kHello = 1,        // client -> server: magic, version, scheme
  kHelloAck = 2,     // server -> client: status, version, scheme, records
  kAuth = 3,         // client -> server: session query (+ IBS signature)
  kAuthAck = 4,      // server -> client: status, query digest
  kSearch = 5,       // client -> server: request id, deadline, partial_ok
  kResultChunk = 6,  // server -> client: request id, matched doc_refs
  kResultEnd = 7,    // server -> client: request id, status, stats
  kStatus = 8,       // server -> client: session-level error, then close
  // Version-2 cluster messages (coordinator <-> shard-owning node).
  kShardSearch = 9,  // client -> server: shard set + cluster-map version
  kShardChunk = 10,  // server -> client: request id, matched (id, ref) pairs
  // Version-3 self-healing control plane (coordinator <-> node).
  kPing = 11,          // client -> server: heartbeat probe
  kPong = 12,          // server -> client: echo + node map version
  kMapUpdate = 13,     // client -> server: serialized ClusterMap
  kMapUpdateAck = 14,  // server -> client: status + node map version
};

// --- frame codec ------------------------------------------------------------

// [u32 len][u32 crc][payload]; payload = [u8 type][body].
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    std::span<const std::uint8_t> payload);

// Incremental frame parser for a nonblocking byte stream. Feed whatever
// arrived; pop complete payloads. Malformed input (oversized length, CRC
// mismatch) flips the reassembler into a terminal error state — the
// connection is poisoned and must be closed; no later bytes can resync it.
// Memory is bounded by the bytes actually received (a hostile length field
// is rejected when its header arrives, before any payload buffering).
class FrameReassembler {
 public:
  void feed(std::span<const std::uint8_t> data);

  // The next complete payload (type byte + body), or nullopt when more
  // bytes are needed or the stream is in error.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> next();

  [[nodiscard]] bool error() const noexcept { return !error_.empty(); }
  [[nodiscard]] const std::string& error_message() const noexcept {
    return error_;
  }
  // Bytes buffered but not yet delivered (reassembly backlog).
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buf_.size() - pos_;
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::string error_;
};

// --- messages ---------------------------------------------------------------
// Each message has an encode() producing the full frame payload (type byte
// included) and a decode taking the body (type byte already consumed).
// Decoders validate counts against the bytes present and throw
// std::invalid_argument / std::out_of_range on malformed input — the
// server turns that into a kBadRequest status, never UB.

struct HelloMsg {
  std::uint8_t version = kNetVersion;
  SchemeKind scheme = SchemeKind::kApks;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static HelloMsg decode(std::span<const std::uint8_t> body);
};

struct HelloAckMsg {
  WireStatus status = WireStatus::kOk;
  std::uint8_t version = kNetVersion;
  SchemeKind scheme = SchemeKind::kApks;
  std::uint64_t records = 0;  // server store size at handshake time
  std::string message;        // human-readable refusal reason on error

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static HelloAckMsg decode(std::span<const std::uint8_t> body);
};

struct AuthMsg {
  // kSigned carries issuer + signature over backend.query_message;
  // kUnchecked is the CLI/bench path (raw capability files hold no
  // signature) and is only honoured when the server opts in.
  enum class Mode : std::uint8_t { kSigned = 0, kUnchecked = 1 };
  Mode mode = Mode::kSigned;
  std::vector<std::uint8_t> query;  // backend wire codec (encode_query)
  std::string issuer;
  std::vector<std::uint8_t> sig;  // serialized IBS signature (u, v points)

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AuthMsg decode(std::span<const std::uint8_t> body);
};

struct AuthAckMsg {
  WireStatus status = WireStatus::kOk;
  QueryDigest digest{};  // the session query's digest (valid when kOk)
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static AuthAckMsg decode(std::span<const std::uint8_t> body);
};

struct SearchMsg {
  std::uint64_t request_id = 0;
  std::uint64_t deadline_ms = 0;  // 0 = server default
  // When true, a deadline/cancelled scan still streams the prefix results
  // before the kResultEnd status; when false only the status comes back.
  bool partial_ok = false;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static SearchMsg decode(std::span<const std::uint8_t> body);
};

struct ResultChunkMsg {
  std::uint64_t request_id = 0;
  std::vector<std::string> refs;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ResultChunkMsg decode(
      std::span<const std::uint8_t> body);
};

// Outcome flags of ResultEndMsg::flags.
inline constexpr std::uint8_t kResultDeadlineExceeded = 1u << 0;
inline constexpr std::uint8_t kResultCancelled = 1u << 1;
inline constexpr std::uint8_t kResultTruncated = 1u << 2;  // prefix results

struct ResultEndMsg {
  std::uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::uint8_t flags = 0;
  std::uint64_t scanned = 0;  // SearchStats equivalents
  std::uint64_t matched = 0;
  std::uint64_t wall_us = 0;
  std::string message;  // failure detail when status != kOk

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ResultEndMsg decode(std::span<const std::uint8_t> body);
};

struct StatusMsg {
  WireStatus status = WireStatus::kOk;
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static StatusMsg decode(std::span<const std::uint8_t> body);
};

// --- version-2 cluster messages ---------------------------------------------
// A coordinator scatters a search over shard-owning nodes. Unlike kSearch,
// the response hits carry the record *id* next to every doc_ref: ids are
// the merge key that makes the coordinator's k-way merge byte-identical to
// a single-node ShardedStore scan (DESIGN.md §5i).

// One matched record of a shard-scoped search.
struct ShardHit {
  std::uint64_t id = 0;
  std::string ref;

  friend bool operator==(const ShardHit&, const ShardHit&) = default;
};

struct ShardSearchMsg {
  std::uint64_t request_id = 0;
  std::uint64_t deadline_ms = 0;  // 0 = server default
  bool partial_ok = false;
  // Placement agreement: the node refuses the request (kBadRequest,
  // "stale cluster map") unless both match its own ClusterMap — a stale
  // coordinator can never harvest silently wrong shard routing.
  std::uint64_t map_version = 0;
  std::uint32_t total_shards = 0;
  std::vector<std::uint32_t> shards;  // the shards this node must scan

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ShardSearchMsg decode(
      std::span<const std::uint8_t> body);
};

// Response stream of a kShardSearch: zero or more kShardChunk frames (hits
// ascending by id) terminated by the same kResultEnd as a plain search.
struct ShardChunkMsg {
  std::uint64_t request_id = 0;
  std::vector<ShardHit> hits;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static ShardChunkMsg decode(
      std::span<const std::uint8_t> body);
};

// --- version-3 self-healing control plane ------------------------------------
// Heartbeats and live map propagation are tiny, auth-free control messages:
// a ping is answered on the io thread (no worker queue) so liveness probing
// measures the event loop, not scan backlog, and a map update is applied on
// the worker pool (shard loading is slow) and acknowledged with the node's
// resulting map version either way.

struct PingMsg {
  std::uint64_t seq = 0;  // echoed in the pong; detects stale replies

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static PingMsg decode(std::span<const std::uint8_t> body);
};

struct PongMsg {
  std::uint64_t seq = 0;
  std::uint64_t map_version = 0;  // node's current ClusterMap version
  std::uint32_t inflight = 0;     // queued + running search jobs

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static PongMsg decode(std::span<const std::uint8_t> body);
};

struct MapUpdateMsg {
  // serialize()d ClusterMap (APKSMAP1 format, self-checksummed). The net
  // layer treats it as opaque bytes; the cluster layer validates it.
  std::vector<std::uint8_t> map_bytes;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static MapUpdateMsg decode(std::span<const std::uint8_t> body);
};

struct MapUpdateAckMsg {
  // kOk: map applied (or already at that version). kBadRequest: refused —
  // the node's own map is newer or the update is malformed; `version`
  // always carries the node's post-decision map version.
  WireStatus status = WireStatus::kOk;
  std::uint64_t version = 0;
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static MapUpdateAckMsg decode(
      std::span<const std::uint8_t> body);
};

// Splits a payload delivered by FrameReassembler into (type, body). Throws
// std::invalid_argument on an empty payload or an unknown type value.
struct ParsedFrame {
  MsgType type;
  std::span<const std::uint8_t> body;
};
[[nodiscard]] ParsedFrame parse_frame(std::span<const std::uint8_t> payload);

}  // namespace apks::net
