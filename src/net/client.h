// NetClient — the blocking counterpart of NetServer (DESIGN.md §5h), used
// by `apks_cli rsearch` and the serving load generator.
//
// The client is deliberately simple: one TCP connection, synchronous
// request/response, frames reassembled through the same FrameReassembler
// the server uses (so both ends of the protocol share one hostile-input
// path). The expected call sequence mirrors the session state machine:
//
//   NetClient c;
//   c.connect(host, port);
//   c.hello(scheme);                  // version + scheme handshake
//   c.auth_unchecked(query_bytes);    // or auth_signed(...)
//   RemoteResult r = c.search(...);   // repeatable; session query is sticky
//
// Server-refused steps (version mismatch, rejected signature, ...) return
// their ack with a non-kOk status rather than throwing; transport failures
// (connect/send/recv errors, malformed frames, a terminal kStatus frame)
// throw ServingError so callers route them through the existing taxonomy.
// Not thread-safe: one NetClient per thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "auth/ibs.h"
#include "net/wire.h"

namespace apks::net {

// The client-side view of one search: the terminal ResultEndMsg plus the
// doc_refs accumulated from the kResultChunk stream. A deadline/cancelled
// search with partial_ok carries the truncated prefix in `refs` with
// kResultTruncated set in `flags`.
struct RemoteResult {
  WireStatus status = WireStatus::kOk;
  std::uint8_t flags = 0;
  std::vector<std::string> refs;
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  std::uint64_t wall_us = 0;  // server-side scan wall time
  std::string message;
};

// The client-side view of one shard-scoped search (cluster mode): the hits
// keep their record ids so a coordinator can k-way merge across nodes.
struct ShardRemoteResult {
  WireStatus status = WireStatus::kOk;
  std::uint8_t flags = 0;
  std::vector<ShardHit> hits;
  std::uint64_t scanned = 0;
  std::uint64_t matched = 0;
  std::uint64_t wall_us = 0;
  std::string message;
};

// Wire form of an authority's IBS signature (the `sig` bytes of AuthMsg):
// the u and v points in the curve's point encoding.
[[nodiscard]] std::vector<std::uint8_t> encode_signature(
    const Curve& curve, const IbsSignature& sig);

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  // Connects and applies `timeout_ms` to the connect itself (nonblocking
  // connect + poll, so a dead or blackholed peer fails with
  // kDeadlineExceeded instead of hanging) and as the socket send/recv
  // timeout afterwards (0 = block forever). Throws ServingError on failure.
  void connect(const std::string& host, std::uint16_t port,
               std::uint64_t timeout_ms = 0);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  // Version/scheme handshake; must be the first exchange. A non-kOk ack
  // means the server refused the session (its message says why) and will
  // close the connection. `version` lets compatibility tests speak the
  // legacy protocol; cluster coordinators need the default (v2).
  HelloAckMsg hello(SchemeKind scheme, std::uint8_t version = kNetVersion);

  // Establishes the session query. `query` is the backend wire codec
  // (encode_query). Signed mode carries the issuing authority and the IBS
  // signature over backend.query_message(query, issuer); unchecked mode is
  // only honoured by servers that opt in (NetServerOptions::allow_unchecked).
  AuthAckMsg auth_signed(std::span<const std::uint8_t> query,
                         const std::string& issuer,
                         std::span<const std::uint8_t> sig);
  AuthAckMsg auth_unchecked(std::span<const std::uint8_t> query);

  // Runs one search over the session query and blocks for the full result
  // stream. deadline_ms = 0 uses the server default; partial_ok asks for
  // prefix results when the deadline fires. The outcome (kOk,
  // kDeadlineExceeded, kOverloaded, ...) is RemoteResult::status.
  RemoteResult search(std::uint64_t deadline_ms = 0, bool partial_ok = false);

  // Cluster mode: one shard-scoped search against a node that owns
  // `shards` under the (map_version, total_shards) placement. Requires a
  // v2 session. Hits come back ascending by record id.
  ShardRemoteResult shard_search(std::span<const std::uint32_t> shards,
                                 std::uint64_t map_version,
                                 std::uint32_t total_shards,
                                 std::uint64_t deadline_ms = 0,
                                 bool partial_ok = false);

  // Heartbeat round-trip (v3 session): sends kPing, blocks for the kPong.
  // The pong carries the node's current map version and its in-flight job
  // count — the health monitor's raw signal. Throws on transport failure.
  PongMsg ping();

  // Pushes a serialized ClusterMap to the node (v3 session). The node
  // applies it iff its version is strictly newer than the node's own map
  // and acks with its post-decision version either way; application
  // (loading newly-assigned shards) happens on the node's worker pool, so
  // this blocks until the handoff completed. Throws on transport failure.
  MapUpdateAckMsg push_map(std::span<const std::uint8_t> map_bytes);

  // Thread-safe cancellation hook: shuts down the socket (SHUT_RDWR)
  // WITHOUT closing the fd, so a concurrent recv_frame in the owning
  // thread fails fast with kIo. Only the owning thread ever closes the
  // descriptor — abort() from another thread can never race a close() into
  // a recycled fd. Used by the coordinator to cancel the losing side of a
  // hedged read.
  void abort() noexcept;

 private:
  void send_frame(std::span<const std::uint8_t> payload);
  // Blocks for the next complete frame payload; throws ServingError on
  // disconnect, timeout or a malformed stream.
  std::vector<std::uint8_t> recv_frame();

  int fd_ = -1;
  // Serializes close() against abort(): without it, a cross-thread abort
  // could land between ::close and a kernel fd reuse and shut down an
  // unrelated descriptor.
  mutable std::mutex lifecycle_mu_;
  FrameReassembler in_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace apks::net
