#include "net/wire.h"

#include <cstring>
#include <stdexcept>

#include "common/crc32.h"

namespace apks::net {

namespace {

// Frame bodies may only carry these type values; anything else is a
// protocol error at parse time.
bool known_type(std::uint8_t t) noexcept {
  return t >= static_cast<std::uint8_t>(MsgType::kHello) &&
         t <= static_cast<std::uint8_t>(MsgType::kMapUpdateAck);
}

WireStatus checked_status(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(WireStatus::kShutdown)) {
    throw std::invalid_argument("wire: unknown status code " +
                                std::to_string(v));
  }
  return static_cast<WireStatus>(v);
}

SchemeKind checked_scheme(std::uint8_t v) {
  if (v < static_cast<std::uint8_t>(SchemeKind::kApks) ||
      v > static_cast<std::uint8_t>(SchemeKind::kMrqed)) {
    throw std::invalid_argument("wire: unknown scheme tag " +
                                std::to_string(v));
  }
  return static_cast<SchemeKind>(v);
}

std::vector<std::uint8_t> finish(ByteWriter& w) { return w.take(); }

ByteWriter begin_payload(MsgType type) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  return w;
}

}  // namespace

std::string_view wire_status_name(WireStatus status) noexcept {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kIo: return "io";
    case WireStatus::kCorrupt: return "corrupt";
    case WireStatus::kUnavailable: return "unavailable";
    case WireStatus::kExhausted: return "exhausted";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kDeadlineExceeded: return "deadline-exceeded";
    case WireStatus::kCancelled: return "cancelled";
    case WireStatus::kUnauthorized: return "unauthorized";
    case WireStatus::kBadRequest: return "bad-request";
    case WireStatus::kShutdown: return "shutdown";
  }
  return "?";
}

WireStatus wire_status_from_error(ErrorCode code) noexcept {
  // The enums are numerically aligned by construction; keep the switch so a
  // new ErrorCode member fails to compile here instead of aliasing.
  switch (code) {
    case ErrorCode::kIo: return WireStatus::kIo;
    case ErrorCode::kCorrupt: return WireStatus::kCorrupt;
    case ErrorCode::kUnavailable: return WireStatus::kUnavailable;
    case ErrorCode::kExhausted: return WireStatus::kExhausted;
    case ErrorCode::kOverloaded: return WireStatus::kOverloaded;
    case ErrorCode::kDeadlineExceeded: return WireStatus::kDeadlineExceeded;
    case ErrorCode::kCancelled: return WireStatus::kCancelled;
  }
  return WireStatus::kBadRequest;
}

std::vector<std::uint8_t> encode_frame(std::span<const std::uint8_t> payload) {
  if (payload.size() > kMaxWirePayload) {
    throw std::invalid_argument("wire: frame payload exceeds cap (" +
                                std::to_string(payload.size()) + " bytes)");
  }
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.raw(payload);
  return w.take();
}

void FrameReassembler::feed(std::span<const std::uint8_t> data) {
  if (error()) return;  // poisoned stream: drop everything
  // Compact before growing: drop the consumed prefix once it dominates.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<std::vector<std::uint8_t>> FrameReassembler::next() {
  if (error()) return std::nullopt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kWireFrameHeaderSize) return std::nullopt;
  const std::uint8_t* p = buf_.data() + pos_;
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  for (int i = 0; i < 4; ++i) {
    crc |= static_cast<std::uint32_t>(p[4 + i]) << (8 * i);
  }
  // The hostile-length check runs on header arrival — before any payload
  // bytes are waited for, let alone buffered into an allocation.
  if (len > kMaxWirePayload) {
    error_ = "frame length " + std::to_string(len) + " exceeds cap";
    return std::nullopt;
  }
  if (avail < kWireFrameHeaderSize + len) return std::nullopt;
  const std::span<const std::uint8_t> payload(p + kWireFrameHeaderSize, len);
  if (crc32(payload) != crc) {
    error_ = "frame CRC mismatch";
    return std::nullopt;
  }
  pos_ += kWireFrameHeaderSize + len;
  return std::vector<std::uint8_t>(payload.begin(), payload.end());
}

// --- messages ---------------------------------------------------------------

std::vector<std::uint8_t> HelloMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kHello);
  w.raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kNetMagic), sizeof(kNetMagic)));
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(scheme));
  return finish(w);
}

HelloMsg HelloMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  const auto magic = r.raw(sizeof(kNetMagic));
  if (std::memcmp(magic.data(), kNetMagic, sizeof(kNetMagic)) != 0) {
    throw std::invalid_argument("wire: bad hello magic");
  }
  HelloMsg m;
  m.version = r.u8();
  m.scheme = checked_scheme(r.u8());
  if (!r.done()) throw std::invalid_argument("wire: hello trailing bytes");
  return m;
}

std::vector<std::uint8_t> HelloAckMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kHelloAck);
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(version);
  w.u8(static_cast<std::uint8_t>(scheme));
  w.u64(records);
  w.str(message);
  return finish(w);
}

HelloAckMsg HelloAckMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  HelloAckMsg m;
  m.status = checked_status(r.u8());
  m.version = r.u8();
  m.scheme = checked_scheme(r.u8());
  m.records = r.u64();
  m.message = r.str();
  if (!r.done()) throw std::invalid_argument("wire: hello-ack trailing bytes");
  return m;
}

std::vector<std::uint8_t> AuthMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kAuth);
  w.u8(static_cast<std::uint8_t>(mode));
  w.bytes(query);
  w.str(issuer);
  w.bytes(sig);
  return finish(w);
}

AuthMsg AuthMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  AuthMsg m;
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(Mode::kUnchecked)) {
    throw std::invalid_argument("wire: unknown auth mode");
  }
  m.mode = static_cast<Mode>(mode);
  const auto query = r.bytes();
  m.query.assign(query.begin(), query.end());
  m.issuer = r.str();
  const auto sig = r.bytes();
  m.sig.assign(sig.begin(), sig.end());
  if (!r.done()) throw std::invalid_argument("wire: auth trailing bytes");
  return m;
}

std::vector<std::uint8_t> AuthAckMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kAuthAck);
  w.u8(static_cast<std::uint8_t>(status));
  w.raw(digest);
  w.str(message);
  return finish(w);
}

AuthAckMsg AuthAckMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  AuthAckMsg m;
  m.status = checked_status(r.u8());
  const auto digest = r.raw(m.digest.size());
  std::memcpy(m.digest.data(), digest.data(), m.digest.size());
  m.message = r.str();
  if (!r.done()) throw std::invalid_argument("wire: auth-ack trailing bytes");
  return m;
}

std::vector<std::uint8_t> SearchMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kSearch);
  w.u64(request_id);
  w.u64(deadline_ms);
  w.u8(partial_ok ? 1 : 0);
  return finish(w);
}

SearchMsg SearchMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  SearchMsg m;
  m.request_id = r.u64();
  m.deadline_ms = r.u64();
  m.partial_ok = r.u8() != 0;
  if (!r.done()) throw std::invalid_argument("wire: search trailing bytes");
  return m;
}

std::vector<std::uint8_t> ResultChunkMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kResultChunk);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(refs.size()));
  for (const auto& ref : refs) w.str(ref);
  return finish(w);
}

ResultChunkMsg ResultChunkMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ResultChunkMsg m;
  m.request_id = r.u64();
  const std::uint32_t count = r.u32();
  // Hostile-count validation: every ref needs at least its length prefix.
  if (count > r.remaining() / 4) {
    throw std::invalid_argument("wire: result chunk count exceeds payload");
  }
  m.refs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.refs.push_back(r.str());
  if (!r.done()) throw std::invalid_argument("wire: chunk trailing bytes");
  return m;
}

std::vector<std::uint8_t> ResultEndMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kResultEnd);
  w.u64(request_id);
  w.u8(static_cast<std::uint8_t>(status));
  w.u8(flags);
  w.u64(scanned);
  w.u64(matched);
  w.u64(wall_us);
  w.str(message);
  return finish(w);
}

ResultEndMsg ResultEndMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ResultEndMsg m;
  m.request_id = r.u64();
  m.status = checked_status(r.u8());
  m.flags = r.u8();
  m.scanned = r.u64();
  m.matched = r.u64();
  m.wall_us = r.u64();
  m.message = r.str();
  if (!r.done()) throw std::invalid_argument("wire: result-end trailing bytes");
  return m;
}

std::vector<std::uint8_t> StatusMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kStatus);
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  return finish(w);
}

StatusMsg StatusMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  StatusMsg m;
  m.status = checked_status(r.u8());
  m.message = r.str();
  if (!r.done()) throw std::invalid_argument("wire: status trailing bytes");
  return m;
}

std::vector<std::uint8_t> ShardSearchMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kShardSearch);
  w.u64(request_id);
  w.u64(deadline_ms);
  w.u8(partial_ok ? 1 : 0);
  w.u64(map_version);
  w.u32(total_shards);
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const std::uint32_t s : shards) w.u32(s);
  return finish(w);
}

ShardSearchMsg ShardSearchMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ShardSearchMsg m;
  m.request_id = r.u64();
  m.deadline_ms = r.u64();
  m.partial_ok = r.u8() != 0;
  m.map_version = r.u64();
  m.total_shards = r.u32();
  const std::uint32_t count = r.u32();
  // Hostile-count validation: every shard index is exactly 4 bytes.
  if (count > r.remaining() / 4) {
    throw std::invalid_argument("wire: shard-search count exceeds payload");
  }
  m.shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.shards.push_back(r.u32());
  if (!r.done()) {
    throw std::invalid_argument("wire: shard-search trailing bytes");
  }
  return m;
}

std::vector<std::uint8_t> ShardChunkMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kShardChunk);
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(hits.size()));
  for (const auto& hit : hits) {
    w.u64(hit.id);
    w.str(hit.ref);
  }
  return finish(w);
}

ShardChunkMsg ShardChunkMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  ShardChunkMsg m;
  m.request_id = r.u64();
  const std::uint32_t count = r.u32();
  // Hostile-count validation: every hit needs its id plus a length prefix.
  if (count > r.remaining() / 12) {
    throw std::invalid_argument("wire: shard chunk count exceeds payload");
  }
  m.hits.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ShardHit hit;
    hit.id = r.u64();
    hit.ref = r.str();
    m.hits.push_back(std::move(hit));
  }
  if (!r.done()) throw std::invalid_argument("wire: shard chunk trailing bytes");
  return m;
}

std::vector<std::uint8_t> PingMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kPing);
  w.u64(seq);
  return finish(w);
}

PingMsg PingMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  PingMsg m;
  m.seq = r.u64();
  if (!r.done()) throw std::invalid_argument("wire: ping trailing bytes");
  return m;
}

std::vector<std::uint8_t> PongMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kPong);
  w.u64(seq);
  w.u64(map_version);
  w.u32(inflight);
  return finish(w);
}

PongMsg PongMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  PongMsg m;
  m.seq = r.u64();
  m.map_version = r.u64();
  m.inflight = r.u32();
  if (!r.done()) throw std::invalid_argument("wire: pong trailing bytes");
  return m;
}

std::vector<std::uint8_t> MapUpdateMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kMapUpdate);
  w.bytes(map_bytes);
  return finish(w);
}

MapUpdateMsg MapUpdateMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  MapUpdateMsg m;
  const auto bytes = r.bytes();
  m.map_bytes.assign(bytes.begin(), bytes.end());
  if (!r.done()) {
    throw std::invalid_argument("wire: map-update trailing bytes");
  }
  return m;
}

std::vector<std::uint8_t> MapUpdateAckMsg::encode() const {
  ByteWriter w = begin_payload(MsgType::kMapUpdateAck);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(version);
  w.str(message);
  return finish(w);
}

MapUpdateAckMsg MapUpdateAckMsg::decode(std::span<const std::uint8_t> body) {
  ByteReader r(body);
  MapUpdateAckMsg m;
  m.status = checked_status(r.u8());
  m.version = r.u64();
  m.message = r.str();
  if (!r.done()) {
    throw std::invalid_argument("wire: map-update-ack trailing bytes");
  }
  return m;
}

ParsedFrame parse_frame(std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    throw std::invalid_argument("wire: empty frame payload");
  }
  if (!known_type(payload[0])) {
    throw std::invalid_argument("wire: unknown message type " +
                                std::to_string(payload[0]));
  }
  return {static_cast<MsgType>(payload[0]), payload.subspan(1)};
}

}  // namespace apks::net
