// Patient matching in a health social network (the paper's Section I
// motivation): a patient may only search for patients with *her own*
// symptoms, and her capability expires — demonstrating attribute-based
// authorization and time-based revocation together.
//
// Build & run:  ./build/examples/patient_matching
#include <cstdio>

#include "cloud/server.h"
#include "core/time_attr.h"
#include "data/phr.h"

using namespace apks;

int main() {
  const Pairing pairing(default_type_a_params());
  // PHR schema with the revocation time dimension appended.
  const PhrSchemaOptions opts{.max_or = 2, .with_time = true};
  const Apks scheme(pairing, phr_schema(opts));
  ChaChaRng rng("patient-matching");

  TrustedAuthority ta(scheme, rng);
  auto network = ta.make_lta(
      "health-net",
      Query{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
             QueryTerm::any(), QueryTerm::any(), QueryTerm::any()}},
      rng);

  // Ann is a diabetic patient; she may match against diabetes only.
  UserAttributes ann;
  ann.values["illness"] = {"diabetes"};
  ann.values["sex"] = {"Female"};
  ann.values["age"] = {"54"};
  ann.values["region"] = {"Worcester"};
  ann.values["provider"] = {"Hospital A"};
  ann.values["time"] = {time_value(2010, 1), time_value(2010, 2),
                        time_value(2010, 3), time_value(2010, 4)};
  network->register_user("ann", ann);

  CapabilityVerifier verifier(pairing, ta.ibs_params());
  verifier.register_authority("health-net");
  CloudServer server(scheme, verifier);

  // Other patients' profiles, indexed with their creation month.
  struct Profile {
    PlainIndex row;
    const char* ref;
  };
  const std::vector<Profile> profiles{
      {{{"57", "Male", "Boston", "diabetes", "Hospital B",
         time_value(2010, 2)}},
       "patient-1 (diabetic, Feb 2010)"},
      {{{"49", "Female", "Quincy", "diabetes", "Hospital A",
         time_value(2010, 3)}},
       "patient-2 (diabetic, Mar 2010)"},
      {{{"61", "Male", "Holyoke", "asthma", "Hospital C",
         time_value(2010, 2)}},
       "patient-3 (asthma, Feb 2010)"},
      {{{"44", "Female", "Boston", "diabetes", "Hospital B",
         time_value(2011, 6)}},
       "patient-4 (diabetic, Jun 2011 — after expiry)"},
  };
  for (const auto& p : profiles) {
    (void)server.store(scheme.gen_index(ta.public_key(), p.row, rng), p.ref);
  }

  // Ann's matching capability: illness = diabetes, restricted to indexes
  // created in the 4-month window Jan-Apr 2010 (one level-5 simple range of
  // the quaternary time tree).
  const Query request{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                       QueryTerm::equals("diabetes"), QueryTerm::any(),
                       time_period(2010, 1, 2010, 4, /*level=*/5)}};
  const auto cap = network->delegate_for_user("ann", request, rng);
  if (!cap.has_value()) {
    std::printf("authorization failed\n");
    return 1;
  }
  std::printf("ann's matching capability issued (level %zu)\n",
              cap->cap.key.level);

  const auto matches = server.search(*cap);
  std::printf("matches (%zu):\n", matches.size());
  for (const auto& m : matches) std::printf("  %s\n", m.c_str());
  // Expected: patient-1 and patient-2. Patient-3 has a different illness;
  // patient-4's index postdates Ann's authorized window, so her (expired)
  // capability cannot see it — revocation by time attribute.

  // Ann cannot get a capability for asthma patients: not her illness.
  const Query not_hers{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                        QueryTerm::equals("asthma"), QueryTerm::any(),
                        time_period(2010, 1, 2010, 4, 5)}};
  std::printf("asthma capability granted? %s (expect no)\n",
              network->delegate_for_user("ann", not_hers, rng).has_value()
                  ? "yes"
                  : "no");
  return 0;
}
