// Searchable indexes + sealed documents: the complete data path.
//
// The paper separates concerns: APKS makes the *index* searchable, while
// the documents themselves are "protected using separate, existing data
// encryption schemes". This example shows both layers together — search
// finds doc_refs over encrypted indexes; the AEAD document store releases
// the actual record only to someone holding the owner's document key.
//
// Build & run:  ./build/examples/sealed_documents
#include <cstdio>

#include "cloud/docstore.h"
#include "cloud/server.h"
#include "core/query_parser.h"
#include "data/phr.h"

using namespace apks;

int main() {
  const Pairing pairing(default_type_a_params());
  const Apks scheme(pairing, phr_schema({.max_or = 2}));
  ChaChaRng rng("sealed-documents");

  TrustedAuthority ta(scheme, rng);
  CapabilityVerifier verifier(pairing, ta.ibs_params());
  verifier.register_authority("TA");
  CloudServer server(scheme, verifier);
  DocumentStore docs;  // hosted by the same (honest-but-curious) cloud

  // --- Owners upload an encrypted index + a sealed document each. --------
  struct Patient {
    const char* ref;
    const char* index_row;
    const char* record;
  };
  const std::vector<Patient> patients{
      {"phr-bob", "61, Male, Boston, diabetes, Hospital A",
       "Bob: HbA1c 8.1%, metformin 500mg"},
      {"phr-carol", "58, Female, Quincy, diabetes, Hospital A",
       "Carol: HbA1c 7.2%, diet-controlled"},
      {"phr-alice", "25, Female, Worcester, flu, Hospital A",
       "Alice: rest and fluids"},
  };
  std::map<std::string, DocumentKey> owner_keys;  // each owner keeps theirs
  for (const auto& p : patients) {
    const PlainIndex row = parse_index(scheme.schema(), p.index_row);
    (void)server.store(scheme.gen_index(ta.public_key(), row, rng), p.ref);
    owner_keys[p.ref] = DocumentKey::random(rng);
    docs.put(p.ref, owner_keys[p.ref], p.record, rng);
  }
  std::printf("cloud: %zu encrypted indexes, %zu sealed documents\n",
              server.record_count(), docs.size());

  // --- A researcher searches with a textual query. ------------------------
  const Query q = parse_query(scheme.schema(),
                              "age : 34-100 @ 2; illness = diabetes");
  const auto cap = ta.issue(q, rng);
  const auto refs = server.search(cap);
  std::printf("search [%s] -> %zu refs\n",
              format_query(scheme.schema(), q).c_str(), refs.size());

  // --- The cloud cannot open what it stores... ----------------------------
  const auto snooped = docs.get_text(refs.front(), DocumentKey{});
  std::printf("cloud reading blob with a zero key: %s\n",
              snooped.has_value() ? "LEAKED!" : "rejected (AEAD)");

  // --- ...but authorized users, given the owners' keys, can. --------------
  for (const auto& ref : refs) {
    const auto text = docs.get_text(ref, owner_keys.at(ref));
    std::printf("  %s -> %s\n", ref.c_str(),
                text.has_value() ? text->c_str() : "<failed>");
  }
  return 0;
}
