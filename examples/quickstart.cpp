// Quickstart: the five APKS algorithms end to end on a tiny PHR database.
//
//   Setup -> GenIndex -> GenCap -> Search -> DelegateCap
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/apks.h"
#include "data/phr.h"

using namespace apks;

int main() {
  // 1. Shared system parameters: the type-A pairing (160-bit group order,
  //    512-bit base field — the paper's 80-bit security level) and the PHR
  //    schema (age and region are hierarchical attributes).
  const Pairing pairing(default_type_a_params());
  const Apks scheme(pairing, phr_schema({.max_or = 2}));
  ChaChaRng rng("quickstart");  // deterministic demo; use SystemRng in prod

  std::printf("schema: m=%zu original dims, m'=%zu converted, n=%zu\n",
              scheme.schema().original_dims(),
              scheme.schema().converted_dims(), scheme.n());

  // 2. Setup (run by the trusted authority).
  ApksPublicKey pk;
  ApksMasterKey msk;
  scheme.setup(rng, pk, msk);
  std::printf("setup done (DPVS dimension %zu)\n", scheme.hpe().dim());

  // 3. Data owners encrypt their searchable indexes.
  const PlainIndex alice{{"25", "Female", "Worcester", "flu", "Hospital A"}};
  const PlainIndex bob{{"61", "Male", "Boston", "diabetes", "Hospital B"}};
  const EncryptedIndex enc_alice = scheme.gen_index(pk, alice, rng);
  const EncryptedIndex enc_bob = scheme.gen_index(pk, bob, rng);
  std::printf("encrypted 2 indexes\n");

  // 4. The authority issues a capability for a multi-dimensional query:
  //    (34 <= age <= 100) AND sex = Male AND illness in {diabetes,
  //    hypertension}.
  const Query query{{
      QueryTerm::range(34, 100, /*level=*/2),
      QueryTerm::equals("Male"),
      QueryTerm::any(),
      QueryTerm::subset({"diabetes", "hypertension"}),
      QueryTerm::any(),
  }};
  const Capability cap = scheme.gen_cap(msk, query, rng);

  // 5. The cloud server evaluates the capability against each index
  //    without learning anything beyond the match bit.
  std::printf("search(alice) = %s (expect no)\n",
              scheme.search(cap, enc_alice) ? "match" : "no");
  std::printf("search(bob)   = %s (expect match)\n",
              scheme.search(cap, enc_bob) ? "match" : "no");

  // 6. Delegation: restrict the capability to Hospital B patients only.
  const Query restriction{{QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::any(), QueryTerm::any(),
                           QueryTerm::equals("Hospital B")}};
  const Capability narrower = scheme.delegate_cap(cap, restriction, rng);
  std::printf("delegated capability level = %zu\n", narrower.key.level);
  std::printf("narrower search(bob) = %s (expect match)\n",
              scheme.search(narrower, enc_bob) ? "match" : "no");

  // A delegated capability can only narrow: re-encrypt Bob at Hospital A
  // and the narrowed capability misses while the original still hits.
  const PlainIndex bob_at_a{{"61", "Male", "Boston", "diabetes",
                             "Hospital A"}};
  const EncryptedIndex enc_bob_a = scheme.gen_index(pk, bob_at_a, rng);
  std::printf("original  search(bob@A) = %s (expect match)\n",
              scheme.search(cap, enc_bob_a) ? "match" : "no");
  std::printf("narrower  search(bob@A) = %s (expect no)\n",
              scheme.search(narrower, enc_bob_a) ? "match" : "no");
  return 0;
}
