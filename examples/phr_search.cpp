// Full multi-owner PHR deployment (the paper's Fig. 1 / Section III):
// a TA bootstraps the system, hospital LTAs authorize their members based
// on attributes, owners upload encrypted indexes to the cloud server, and
// the server verifies capability signatures before searching.
//
// Build & run:  ./build/examples/phr_search
#include <cstdio>

#include "cloud/server.h"
#include "data/phr.h"

using namespace apks;

int main() {
  const Pairing pairing(default_type_a_params());
  const Apks scheme(pairing, phr_schema({.max_or = 2}));
  ChaChaRng rng("phr-search");

  // --- Authority hierarchy -------------------------------------------------
  TrustedAuthority ta(scheme, rng);
  // Hospital A's LTA: every capability it hands out is confined to its own
  // patients (provider = "Hospital A") — the paper's running example.
  auto hospital_a = ta.make_lta(
      "hospital-A",
      Query{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
             QueryTerm::any(), QueryTerm::equals("Hospital A")}},
      rng);

  // Dr. Peter treats chronic illnesses at hospital A.
  UserAttributes peter;
  peter.values["age"] = {"45"};
  peter.values["sex"] = {"Male"};
  peter.values["region"] = {"Boston"};
  peter.values["illness"] = {"diabetes", "hypertension"};
  peter.values["provider"] = {"Hospital A"};
  hospital_a->register_user("dr-peter", peter);

  // --- Cloud server with signature admission -------------------------------
  CapabilityVerifier verifier(pairing, ta.ibs_params());
  verifier.register_authority("hospital-A");
  CloudServer server(scheme, verifier);

  // --- Owners contribute encrypted PHR indexes -----------------------------
  const std::vector<std::pair<PlainIndex, std::string>> corpus{
      {{{"61", "Male", "Boston", "diabetes", "Hospital A"}}, "phr-bob"},
      {{{"58", "Female", "Quincy", "diabetes", "Hospital A"}}, "phr-carol"},
      {{{"25", "Female", "Worcester", "flu", "Hospital A"}}, "phr-alice"},
      {{{"70", "Male", "Boston", "diabetes", "Hospital B"}}, "phr-dave"},
      {{{"66", "Male", "Cambridge", "hypertension", "Hospital A"}},
       "phr-erin"},
  };
  for (const auto& [row, ref] : corpus) {
    (void)server.store(scheme.gen_index(ta.public_key(), row, rng), ref);
  }
  std::printf("cloud stores %zu encrypted indexes from multiple owners\n",
              server.record_count());

  // --- Dr. Peter requests a capability -------------------------------------
  // "elderly patients with one of my illnesses": (34<=age<=100) AND
  // illness in {diabetes, hypertension}. The LTA checks his attributes,
  // delegates from its scoped capability and signs the result.
  const Query request{{QueryTerm::range(34, 100, 2), QueryTerm::any(),
                       QueryTerm::any(),
                       QueryTerm::subset({"diabetes", "hypertension"}),
                       QueryTerm::any()}};
  const auto cap = hospital_a->delegate_for_user("dr-peter", request, rng);
  if (!cap.has_value()) {
    std::printf("authorization denied!\n");
    return 1;
  }
  std::printf("capability issued by %s (level %zu)\n", cap->issuer.c_str(),
              cap->cap.key.level);

  CloudServer::SearchStats stats;
  const auto docs = server.search(*cap, &stats);
  std::printf("server scanned %zu records, %zu matched:\n", stats.scanned,
              stats.matched);
  for (const auto& d : docs) std::printf("  %s\n", d.c_str());
  // Expected: bob, carol, erin — dave is at hospital B (outside the LTA
  // scope), alice is young with flu.

  // --- An ineligible request is refused at the LTA -------------------------
  const Query nosy{{QueryTerm::any(), QueryTerm::any(), QueryTerm::any(),
                    QueryTerm::equals("leukemia"), QueryTerm::any()}};
  std::printf("request for untreated illness authorized? %s (expect no)\n",
              hospital_a->delegate_for_user("dr-peter", nosy, rng).has_value()
                  ? "yes"
                  : "no");

  // --- A forged capability is refused at the server ------------------------
  auto forged = *cap;
  forged.issuer = "hospital-Z";
  CloudServer::SearchStats forged_stats;
  (void)server.search(forged, &forged_stats);
  std::printf("forged capability authorized? %s (expect no)\n",
              forged_stats.authorized ? "yes" : "no");
  return 0;
}
