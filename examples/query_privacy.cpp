// Query privacy: the dictionary attack of Section V, demonstrated against
// the basic APKS scheme, and defeated by APKS+ proxy re-encryption.
//
// The honest-but-curious cloud server holds a user's capability and knows
// the public key and the keyword universe. Against basic APKS it encrypts
// every candidate index itself and tests the capability — recovering the
// user's query keywords. Against APKS+ the same attack finds nothing,
// because valid ciphertexts require the proxies' share of r.
//
// Build & run:  ./build/examples/query_privacy
#include <cstdio>
#include <string>

#include "cloud/proxy.h"
#include "core/apks_plus.h"

using namespace apks;

namespace {

// A deliberately tiny universe so the attack is fast: one dimension
// "illness" with six values — |W| = 6 trial encryptions, exactly the
// |W1| x |W2| x ... complexity the paper quotes.
Schema tiny_schema() {
  return Schema({{"illness", nullptr, 1}, {"sex", nullptr, 1}});
}

const std::vector<std::string> kIllnesses{"flu",      "diabetes", "asthma",
                                          "leukemia", "measles",  "covid"};
const std::vector<std::string> kSexes{"Male", "Female"};

}  // namespace

int main() {
  const Pairing pairing(default_type_a_params());
  ChaChaRng rng("query-privacy");

  // ---------------- Basic APKS: the attack succeeds ----------------------
  {
    const Apks scheme(pairing, tiny_schema());
    ApksPublicKey pk;
    ApksMasterKey msk;
    scheme.setup(rng, pk, msk);

    // The victim's secret query: illness = diabetes AND sex = Female.
    const Query secret{{QueryTerm::equals("diabetes"),
                        QueryTerm::equals("Female")}};
    const Capability cap = scheme.gen_cap(msk, secret, rng);

    std::printf("[basic APKS] server runs the dictionary attack...\n");
    std::size_t trials = 0;
    for (const auto& illness : kIllnesses) {
      for (const auto& sex : kSexes) {
        ++trials;
        const auto forged =
            scheme.gen_index(pk, PlainIndex{{illness, sex}}, rng);
        if (scheme.search(cap, forged)) {
          std::printf(
              "[basic APKS] query RECOVERED after %zu trials: "
              "illness=%s sex=%s\n",
              trials, illness.c_str(), sex.c_str());
        }
      }
    }
  }

  // ---------------- APKS+: the same attack fails -------------------------
  {
    const ApksPlus scheme(pairing, tiny_schema());
    const auto setup = scheme.setup_plus(rng);
    auto pipeline = make_proxy_pipeline(scheme, setup.r, /*proxies=*/2, rng);

    const Query secret{{QueryTerm::equals("diabetes"),
                        QueryTerm::equals("Female")}};
    const Capability cap = scheme.gen_cap(setup.msk, secret, rng);

    // Sanity: the legitimate pipeline still works.
    auto legit = scheme.partial_gen_index(
        setup.pk, PlainIndex{{"diabetes", "Female"}}, rng);
    legit = pipeline.process(legit);
    std::printf("[APKS+] legitimate upload matches: %s (expect yes)\n",
                scheme.search(cap, legit) ? "yes" : "no");

    std::printf("[APKS+] server runs the same dictionary attack...\n");
    std::size_t hits = 0;
    for (const auto& illness : kIllnesses) {
      for (const auto& sex : kSexes) {
        const auto forged = scheme.partial_gen_index(
            setup.pk, PlainIndex{{illness, sex}}, rng);
        if (scheme.search(cap, forged)) ++hits;
      }
    }
    std::printf("[APKS+] attack hits: %zu / %zu (expect 0 — query privacy "
                "holds)\n",
                hits, kIllnesses.size() * kSexes.size());
  }
  return 0;
}
